// Package core implements the paper's primary contribution: the
// 9/5-approximation algorithm for nested active-time scheduling. The
// pipeline is
//
//  1. build the window tree and canonicalize it (lamtree),
//  2. build and solve the strengthened LP of Figure 1a (nestlp),
//  3. transform the LP solution per Lemma 3.1,
//  4. round bottom-up per Algorithm 1, giving an integral per-node
//     open-count vector x̃ with x̃([m]) ≤ (9/5)·x([m]) (Lemma 3.3),
//  5. extract a concrete schedule through the Lemma 4.1 flow network.
//
// Feasibility of x̃ is guaranteed by the paper's Theorem 4.5; the
// implementation re-verifies it with a flow check and, purely as a
// defense against floating-point LP noise, can repair a failed vector
// by opening additional slots (counted in the Report — zero in all
// observed runs).
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/flowfeas"
	"repro/internal/instance"
	"repro/internal/lamtree"
	"repro/internal/metrics"
	"repro/internal/nestlp"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Ratio is the proven approximation factor.
const Ratio = 9.0 / 5.0

// Report describes one solved component or instance.
type Report struct {
	// LPValue is the optimal value of the strengthened LP, a lower
	// bound on OPT.
	LPValue float64
	// RoundedSlots is Σ_i x̃(i), the open-slot budget after rounding.
	RoundedSlots int64
	// ActiveSlots is the number of slots actually used by the final
	// schedule (≤ RoundedSlots: a slot opened by x̃ may end up empty).
	ActiveSlots int64
	// Repairs counts slots added by the numeric repair step; expected
	// to be zero.
	Repairs int64
	// Minimalized counts slots removed by the optional minimalization
	// post-pass (Options.Minimalize).
	Minimalized int64
	// CertifiedRatio is ActiveSlots / LPValue, an a-posteriori
	// certificate on this instance (≤ 9/5 whenever Repairs == 0).
	CertifiedRatio float64
	// Stats is a snapshot of the solve's instrumentation: per-stage
	// wall time, simplex pivots, max-flow operations, and so on (see
	// internal/metrics). When Options.Metrics supplied an external
	// recorder, the snapshot reflects that recorder's cumulative state.
	// Only set on whole-instance reports (SolveWithOptions), not on
	// per-component ones.
	Stats *metrics.Stats
	// Warm is the retained solver state when Options.CaptureWarm was
	// set; only set on whole-instance reports.
	Warm *WarmLP
}

// merge accumulates component reports into a whole-instance report.
func (r *Report) merge(o Report) {
	r.LPValue += o.LPValue
	r.RoundedSlots += o.RoundedSlots
	r.ActiveSlots += o.ActiveSlots
	r.Repairs += o.Repairs
	r.Minimalized += o.Minimalized
	if r.LPValue > 0 {
		r.CertifiedRatio = float64(r.ActiveSlots) / r.LPValue
	}
}

// Options tunes Solve.
type Options struct {
	// ExactLP solves the strengthened LP with exact rational
	// arithmetic instead of float64 simplex. Slower, but realizes the
	// paper's exact-oracle assumption literally. Recommended only for
	// small instances and verification runs.
	ExactLP bool
	// Minimalize post-processes the rounded count vector by closing
	// every slot whose removal keeps the instance feasible. The output
	// never gets worse, so the 9/5 guarantee is preserved; on many
	// instances it recovers the optimum.
	Minimalize bool
	// Compact chooses the concrete open slots inside each node region
	// to minimize fragmentation (machine power-on events) instead of
	// taking the leftmost ones. The objective value is unchanged.
	Compact bool
	// Workers bounds the number of goroutines solving independent
	// laminar forests (disjoint components) concurrently. Values ≤ 1
	// solve sequentially. The result — schedule, objective, and all
	// metric counters — is identical at any worker count; only wall
	// time changes.
	Workers int
	// Metrics, when non-nil, receives the solve's instrumentation
	// (and may accumulate across many solves, e.g. in an experiment
	// sweep). When nil, a fresh recorder is used so Report.Stats
	// covers exactly one solve. The recorder is safe for concurrent
	// use; Workers > 1 shares it across forest workers.
	Metrics *metrics.Recorder
	// Trace, when non-nil, receives hierarchical spans for the solve:
	// a root "solve" span, one lane per forest solve (annotated with
	// component and worker indices), a child span per pipeline stage,
	// and "simplex"/"ratsimplex" spans from the LP substrate. Nil
	// disables tracing at the cost of a nil check per span site.
	Trace *trace.Tracer
	// CaptureWarm retains each component's canonicalized tree and
	// final count vector on Report.Warm so the solve cache can
	// warm-start later raised-g requests.
	CaptureWarm bool
}

// Solve runs the 9/5-approximation on a nested instance and returns a
// feasible schedule with its report. It returns an error if the
// instance is not nested or not feasible.
func Solve(in *instance.Instance) (*sched.Schedule, Report, error) {
	return SolveWithOptions(in, Options{})
}

// SolveWithOptions is Solve with explicit options. Independent laminar
// forests (disjoint components) are solved concurrently when
// opts.Workers > 1; component schedules are merged in component order,
// so the output is deterministic at any worker count.
func SolveWithOptions(in *instance.Instance, opts Options) (*sched.Schedule, Report, error) {
	return SolveContext(context.Background(), in, opts)
}

// SolveContext is SolveWithOptions with cooperative cancellation: ctx
// is checked between pipeline stages, before each forest solve, and
// inside the float-simplex pivot loop and every Dinic BFS phase, so a
// canceled or expired context stops the solve promptly. The returned
// error then wraps ctx.Err() (matchable with errors.Is against
// context.Canceled / context.DeadlineExceeded). A nil ctx behaves
// like context.Background().
func SolveContext(ctx context.Context, in *instance.Instance, opts Options) (*sched.Schedule, Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := in.Validate(); err != nil {
		return nil, Report{}, err
	}
	if !in.Nested() {
		return nil, Report{}, fmt.Errorf("core: instance windows are not nested")
	}
	rec := opts.Metrics
	if rec == nil {
		rec = new(metrics.Recorder)
	}
	out := sched.New(in.G)
	var total Report
	comps, backmap := in.Components()

	root := opts.Trace.StartSpan("solve",
		trace.Int("jobs", int64(in.N())),
		trace.Int("g", in.G),
		trace.Int("forests", int64(len(comps))))
	defer root.End()

	type compResult struct {
		s    *sched.Schedule
		rep  Report
		warm *WarmComponent
		err  error
	}
	results := make([]compResult, len(comps))
	solveOne := func(ci, worker int) {
		// Per-forest cancellation check: a canceled context stops the
		// pool from starting new forest solves.
		if err := ctx.Err(); err != nil {
			results[ci] = compResult{err: err}
			return
		}
		fsp := root.StartLane("forest_solve",
			trace.Int("component", int64(ci)),
			trace.Int("worker", int64(worker)),
			trace.Int("jobs", int64(comps[ci].N())))
		start := time.Now()
		s, rep, warm, err := solveComponent(ctx, comps[ci], opts, rec, fsp)
		rec.ForestSolveNS.Observe(int64(time.Since(start)))
		rec.ForestsSolved.Inc()
		fsp.End()
		results[ci] = compResult{s: s, rep: rep, warm: warm, err: err}
	}

	workers := opts.Workers
	if workers > len(comps) {
		workers = len(comps)
	}
	if workers <= 1 {
		for ci := range comps {
			solveOne(ci, 0)
		}
	} else {
		// Bounded worker pool over forest indices. Workers share the
		// recorder (atomic counters) and write only results[ci].
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for ci := range idx {
					solveOne(ci, w)
				}
			}(w)
		}
		for ci := range comps {
			idx <- ci
		}
		close(idx)
		wg.Wait()
	}

	if err := ctx.Err(); err != nil {
		return nil, Report{}, err
	}
	var warm *WarmLP
	if opts.CaptureWarm {
		warm = &WarmLP{G: in.G, Jobs: in.N(), Comps: make([]WarmComponent, len(comps))}
	}
	for ci, res := range results {
		if res.err != nil {
			return nil, Report{}, fmt.Errorf("core: component %d: %w", ci, res.err)
		}
		for t, js := range res.s.Slots {
			for _, localID := range js {
				out.Assign(t, backmap[ci][localID])
			}
		}
		total.merge(res.rep)
		if warm != nil {
			if res.warm == nil {
				warm = nil // a component skipped capture; drop the snapshot
			} else {
				warm.Comps[ci] = *res.warm
			}
		}
	}
	_, stopValidate := startStage(rec, root, metrics.StageValidate)
	err := out.Validate(in)
	stopValidate()
	if err != nil {
		return nil, Report{}, fmt.Errorf("core: internal: produced invalid schedule: %w", err)
	}
	total.ActiveSlots = out.NumActive()
	if total.LPValue > 0 {
		total.CertifiedRatio = float64(total.ActiveSlots) / total.LPValue
	}
	total.Warm = warm
	total.Stats = rec.Snapshot()
	return out, total, nil
}

// startStage starts the metrics timer and a trace child span for one
// pipeline stage; calling the returned stop ends both. The span is
// also returned so sub-solver spans can nest under it.
func startStage(rec *metrics.Recorder, parent *trace.Span, st metrics.Stage) (*trace.Span, func()) {
	stop := rec.StartStage(st)
	sp := parent.StartChild(st.String())
	return sp, func() { sp.End(); stop() }
}

// solveComponent runs the pipeline on one connected component,
// reporting per-stage wall time and operation counts to rec (which
// may be shared with other components solving concurrently) and
// per-stage spans under the component's forest span fsp. ctx is
// checked between stages (and inside the LP and flow sub-solvers), so
// cancellation interrupts a long component solve mid-pipeline.
func solveComponent(ctx context.Context, in *instance.Instance, opts Options, rec *metrics.Recorder, fsp *trace.Span) (*sched.Schedule, Report, *WarmComponent, error) {
	rec = metrics.OrNop(rec)

	_, stop := startStage(rec, fsp, metrics.StageTreeBuild)
	tree, err := lamtree.Build(in)
	stop()
	if err != nil {
		return nil, Report{}, nil, err
	}
	_, stop = startStage(rec, fsp, metrics.StageCanonicalize)
	err = tree.Canonicalize()
	stop()
	if err != nil {
		return nil, Report{}, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, Report{}, nil, err
	}

	// Feasibility gate: everything open must work. The node network is
	// built once here and reused by every later probe on this tree —
	// the post-rounding check, the repair loop (warm-started), the
	// minimalization sweep and the final placement — so each probe
	// re-primes capacities instead of rebuilding the graph.
	_, stop = startStage(rec, fsp, metrics.StageFeasGate)
	full := make([]int64, tree.M())
	for i := range full {
		full[i] = tree.Nodes[i].L
	}
	net := flowfeas.NewNodeNet(tree)
	ok, err := net.Check(ctx, full, rec)
	stop()
	if err != nil {
		return nil, Report{}, nil, err
	}
	if !ok {
		return nil, Report{}, nil, fmt.Errorf("infeasible instance")
	}

	_, stop = startStage(rec, fsp, metrics.StageLPBuild)
	model := nestlp.NewModel(tree)
	model.SetRecorder(rec)
	stop()
	if err := ctx.Err(); err != nil {
		return nil, Report{}, nil, err
	}

	lpSpan, stop := startStage(rec, fsp, metrics.StageLPSolve)
	model.SetTraceSpan(lpSpan)
	model.SetContext(ctx)
	var sol *nestlp.Solution
	if opts.ExactLP {
		sol, err = model.SolveExact()
	} else {
		sol, err = model.Solve()
	}
	stop()
	if err != nil {
		return nil, Report{}, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, Report{}, nil, err
	}
	lpValue := sol.Objective

	_, stop = startStage(rec, fsp, metrics.StageTransform)
	model.Transform(sol)
	I := model.TopmostPositive(sol)
	stop()

	_, stop = startStage(rec, fsp, metrics.StageRound)
	counts := Round(tree, sol, I)
	stop()
	if err := ctx.Err(); err != nil {
		return nil, Report{}, nil, err
	}

	rep := Report{LPValue: lpValue}
	for _, c := range counts {
		rep.RoundedSlots += c
	}

	// Theorem 4.5 guarantees feasibility; verify and repair if
	// floating-point noise ever broke it.
	_, stop = startStage(rec, fsp, metrics.StageFeasCheck)
	ok, err = net.Check(ctx, counts, rec)
	stop()
	if err != nil {
		return nil, Report{}, nil, err
	}
	if !ok {
		_, stop = startStage(rec, fsp, metrics.StageRepair)
		added, ok, err := repair(ctx, tree, net, counts, rec)
		stop()
		if err != nil {
			return nil, Report{}, nil, err
		}
		if !ok {
			return nil, Report{}, nil, fmt.Errorf("internal: repair failed")
		}
		rep.Repairs = added
		rep.RoundedSlots += added
	}

	if opts.Minimalize {
		_, stop = startStage(rec, fsp, metrics.StageMinimalize)
		removed, err := minimalizeCountsNet(ctx, tree, net, counts, rec)
		stop()
		if err != nil {
			return nil, Report{}, nil, err
		}
		rep.Minimalized = removed
		rep.RoundedSlots -= removed
	}
	if err := ctx.Err(); err != nil {
		return nil, Report{}, nil, err
	}

	_, stop = startStage(rec, fsp, metrics.StagePlace)
	var s *sched.Schedule
	if opts.Compact {
		_, s, err = PlaceCompact(tree, counts)
	} else {
		s, err = net.Schedule(ctx, counts, rec)
	}
	stop()
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, Report{}, nil, cerr
		}
		return nil, Report{}, nil, fmt.Errorf("internal: %w", err)
	}
	rep.ActiveSlots = s.NumActive()
	if lpValue > 0 {
		rep.CertifiedRatio = float64(rep.ActiveSlots) / lpValue
	}
	var warm *WarmComponent
	if opts.CaptureWarm {
		warm = &WarmComponent{Tree: tree, Counts: counts}
	}
	return s, rep, warm, nil
}

// Round is Algorithm 1. Given the transformed LP solution and the
// topmost positive set I, it floors x on I, keeps x elsewhere (where
// it is integral: 0 above I, L below), and then walks Anc(I) bottom to
// top, rounding nodes up while the subtree's 9/5 budget allows.
func Round(t *lamtree.Tree, sol *nestlp.Solution, I []int) []int64 {
	m := t.M()
	xt := make([]float64, m)
	inI := make([]bool, m)
	for _, i := range I {
		inI[i] = true
	}
	for i := 0; i < m; i++ {
		if inI[i] {
			xt[i] = math.Floor(sol.X[i] + roundEps)
		} else {
			xt[i] = sol.X[i]
		}
	}

	anc := ancestorsOf(t, I)
	// Bottom to top: decreasing depth, ties broken by ID for
	// determinism.
	sort.Slice(anc, func(a, b int) bool {
		da, db := t.Nodes[anc[a]].Depth, t.Nodes[anc[b]].Depth
		if da != db {
			return da > db
		}
		return anc[a] < anc[b]
	})

	for _, i := range anc {
		des := t.Des(i)
		var xSum, xtSum float64
		for _, d := range des {
			xSum += sol.X[d]
			xtSum += xt[d]
		}
		for 9*xSum/5 >= xtSum+1-roundEps {
			// Find a descendant still below its fractional value.
			picked := -1
			for _, d := range des {
				if xt[d] < sol.X[d]-roundEps {
					picked = d
					break
				}
			}
			if picked < 0 {
				break
			}
			up := math.Ceil(sol.X[picked] - roundEps)
			xtSum += up - xt[picked]
			xt[picked] = up
		}
	}

	counts := make([]int64, m)
	for i := 0; i < m; i++ {
		c := int64(math.Round(xt[i]))
		if math.Abs(xt[i]-float64(c)) > 1e-6 {
			panic(fmt.Sprintf("core: x̃(%d)=%g not integral", i, xt[i]))
		}
		if c < 0 {
			c = 0
		}
		if c > t.Nodes[i].L {
			c = t.Nodes[i].L
		}
		counts[i] = c
	}
	return counts
}

const roundEps = 1e-9

// ancestorsOf returns Anc(I): every node that is an I-node or a
// (strict) ancestor of one, deduplicated.
func ancestorsOf(t *lamtree.Tree, I []int) []int {
	seen := make([]bool, t.M())
	var out []int
	for _, i := range I {
		for u := i; u >= 0; u = t.Nodes[u].Parent {
			if seen[u] {
				break
			}
			seen[u] = true
			out = append(out, u)
		}
	}
	return out
}

// repair opens additional slots until the count vector becomes
// feasible, checking ctx once per flow re-check. It exists purely as a
// numeric safety net; the paper's Theorem 4.5 makes it unreachable
// with an exact LP solution. Counts only ever grow here, so each
// re-check warm-starts the node network from the previous probe's
// flow instead of recomputing it.
func repair(ctx context.Context, t *lamtree.Tree, net *flowfeas.NodeNet, counts []int64, rec *metrics.Recorder) (added int64, ok bool, err error) {
	for {
		feasible, err := net.CheckWarm(ctx, counts, rec)
		if err != nil {
			return added, false, err
		}
		if feasible {
			return added, true, nil
		}
		progressed := false
		for i := 0; i < t.M(); i++ {
			if counts[i] < t.Nodes[i].L {
				counts[i]++
				added++
				progressed = true
				break
			}
		}
		if !progressed {
			return added, false, nil
		}
	}
}
