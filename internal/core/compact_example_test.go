package core

import (
	"testing"

	"repro/internal/flowfeas"
	"repro/internal/instance"
	"repro/internal/lamtree"
)

// TestPlaceCompactMergesAroundChild: a parent region surrounds a rigid
// child; the default leftmost placement puts the parent's slot at the
// far left (two fragments), while the compact placement glues it to
// the child's block (one fragment).
func TestPlaceCompactMergesAroundChild(t *testing.T) {
	in, err := instance.New(2, []instance.Job{
		{Processing: 1, Release: 0, Deadline: 10}, // parent job
		{Processing: 2, Release: 4, Deadline: 6},  // rigid child
	})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := lamtree.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, tree.M())
	counts[tree.NodeOf[1]] = 2 // child fully open
	counts[tree.NodeOf[0]] = 1 // one parent slot
	if !flowfeas.CheckNodeCounts(tree, counts) {
		t.Fatal("counts must be feasible")
	}

	defSched, err := flowfeas.ScheduleOnNodeCounts(tree, counts)
	if err != nil {
		t.Fatal(err)
	}
	if got := defSched.ComputeMetrics().Fragments; got != 2 {
		t.Fatalf("default placement fragments = %d, expected 2 (leftmost parent slot)", got)
	}

	slots, compSched, err := PlaceCompact(tree, counts)
	if err != nil {
		t.Fatal(err)
	}
	if err := compSched.Validate(in); err != nil {
		t.Fatal(err)
	}
	if got := fragmentsOf(slots); got != 1 {
		t.Fatalf("compact placement fragments = %d, expected 1 (slots %v)", got, slots)
	}
}
