package core

import (
	"testing"

	"repro/internal/lamtree"
)

// TestLemma49Counting verifies the counting invariant behind
// Algorithm 2 on the symmetric Nested32 solutions: within any subtree
// containing at least three type-C nodes of I (and subject to the
// rounding having been driven by the 9/5 budget), the number of
// type-C2 nodes is at least twice the number of type-C1 nodes, so the
// triple construction never runs out of C2 nodes.
func TestLemma49Counting(t *testing.T) {
	for _, g := range []int64{10, 12, 16, 20} {
		tree, model, sol := symmetricNested32(t, g)
		model.Transform(sol)
		I := model.TopmostPositive(sol)
		counts := Round(tree, sol, I)
		types := Classify(tree, sol, counts, I)

		inI := make(map[int]bool, len(I))
		for _, i := range I {
			inI[i] = true
		}
		for i := range tree.Nodes {
			n1, n2, nC := countTypes(tree, types, inI, i)
			if n1+n2+nC >= 3 && n1 > 0 {
				if n2 < 2*n1 {
					t.Fatalf("g=%d subtree %d: n2=%d < 2·n1=%d (Lemma 4.9)", g, i, n2, 2*n1)
				}
			}
		}
	}
}

// countTypes tallies (C1, C2, B) nodes of I inside Des(i).
func countTypes(tree *lamtree.Tree, types map[int]NodeType, inI map[int]bool, i int) (n1, n2, nB int) {
	for _, d := range tree.Des(i) {
		if !inI[d] {
			continue
		}
		switch types[d] {
		case TypeC1:
			n1++
		case TypeC2:
			n2++
		default:
			nB++
		}
	}
	return n1, n2, nB
}
