// Package maxflow implements Dinic's maximum-flow algorithm on
// directed graphs with int64 capacities. It is the workhorse behind
// every feasibility test in the library: scheduling feasibility for a
// set of active slots reduces to a max-flow computation (see the
// paper's §1 and Lemma 4.1).
package maxflow

import (
	"context"
	"fmt"

	"repro/internal/metrics"
)

// Inf is a capacity treated as unbounded. It is large enough that no
// sum of realistic instance capacities overflows int64.
const Inf = int64(1) << 60

// edge is half of an arc; the reverse half lives at rev in the
// adjacency list of to.
type edge struct {
	to  int
	rev int
	cap int64 // residual capacity
	org int64 // original capacity, to report flow = org - cap
}

// Graph is a flow network under construction or after a Run. The
// level/iter/queue scratch buffers persist across runs, so repeated
// probes on one graph allocate nothing; a Graph must therefore not
// run concurrently with itself.
type Graph struct {
	adj   [][]edge
	level []int
	iter  []int
	queue []int
	rec   *metrics.Recorder
}

// SetRecorder attaches a metrics recorder; Run and RunPushRelabel then
// report their operation counts to it. A nil recorder disables
// reporting. Counts are accumulated locally and published once per
// run, so instrumentation costs no per-operation atomics.
func (g *Graph) SetRecorder(r *metrics.Recorder) { g.rec = r }

// New returns a graph with n nodes (0..n-1) and no edges.
func New(n int) *Graph {
	return &Graph{adj: make([][]edge, n)}
}

// AddNode appends a new node and returns its index.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// NumNodes returns the current node count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// EdgeRef identifies an edge added with AddEdge so its flow can be
// queried after running the algorithm.
type EdgeRef struct {
	from int
	idx  int
}

// AddEdge adds a directed edge from -> to with the given capacity and
// returns a reference for later flow queries. Capacities must be
// non-negative.
func (g *Graph) AddEdge(from, to int, capacity int64) EdgeRef {
	if capacity < 0 {
		panic(fmt.Sprintf("maxflow: negative capacity %d", capacity))
	}
	if from < 0 || from >= len(g.adj) || to < 0 || to >= len(g.adj) {
		panic(fmt.Sprintf("maxflow: edge %d->%d out of range (n=%d)", from, to, len(g.adj)))
	}
	g.adj[from] = append(g.adj[from], edge{to: to, rev: len(g.adj[to]), cap: capacity, org: capacity})
	g.adj[to] = append(g.adj[to], edge{to: from, rev: len(g.adj[from]) - 1, cap: 0, org: 0})
	return EdgeRef{from: from, idx: len(g.adj[from]) - 1}
}

// Flow returns the flow currently routed through the referenced edge.
func (g *Graph) Flow(r EdgeRef) int64 {
	e := g.adj[r.from][r.idx]
	return e.org - e.cap
}

// Capacity returns the referenced edge's original capacity.
func (g *Graph) Capacity(r EdgeRef) int64 { return g.adj[r.from][r.idx].org }

// SetCapacity resets the referenced edge's capacity and clears any flow
// on it (both directions), allowing incremental re-solves.
func (g *Graph) SetCapacity(r EdgeRef, capacity int64) {
	if capacity < 0 {
		panic(fmt.Sprintf("maxflow: negative capacity %d", capacity))
	}
	e := &g.adj[r.from][r.idx]
	re := &g.adj[e.to][e.rev]
	e.cap, e.org = capacity, capacity
	re.cap, re.org = 0, 0
}

// RaiseCapacity grows the referenced edge's capacity to capacity
// (which must not be below the current one) while preserving any flow
// already routed through it. Because raising capacities keeps every
// existing flow feasible, a subsequent Run continues from the current
// flow instead of recomputing it — the warm-start path for monotone
// probe sequences. Run then returns only the additional flow found.
func (g *Graph) RaiseCapacity(r EdgeRef, capacity int64) {
	e := &g.adj[r.from][r.idx]
	if capacity < e.org {
		panic(fmt.Sprintf("maxflow: RaiseCapacity %d below current %d", capacity, e.org))
	}
	e.cap += capacity - e.org
	e.org = capacity
}

// Reset clears all flow, restoring every edge to its original
// capacity.
func (g *Graph) Reset() {
	for u := range g.adj {
		for i := range g.adj[u] {
			e := &g.adj[u][i]
			e.cap = e.org
		}
	}
}

// Run computes the maximum s-t flow with Dinic's algorithm and returns
// its value. The graph retains the flow so individual edge flows can
// be read with Flow.
func (g *Graph) Run(s, t int) int64 {
	total, _ := g.RunCtx(context.Background(), s, t)
	return total
}

// RunCtx is Run with cooperative cancellation: ctx is checked once per
// BFS phase (the outer Dinic iteration). On cancellation it stops
// early and returns the flow routed so far together with ctx's error;
// the graph is left with a valid partial flow. Operation counts cover
// the work actually performed.
func (g *Graph) RunCtx(ctx context.Context, s, t int) (int64, error) {
	if s == t {
		panic("maxflow: source equals sink")
	}
	n := len(g.adj)
	if g.level == nil || len(g.level) < n {
		g.level = make([]int, n)
		g.iter = make([]int, n)
	}
	if cap(g.queue) < n {
		g.queue = make([]int, 0, n)
	}
	var total int64
	var bfsRounds, augPaths int64
	var err error
	for {
		if err = ctx.Err(); err != nil {
			break
		}
		if !g.bfs(s, t, &g.queue) {
			break
		}
		bfsRounds++
		for i := 0; i < n; i++ {
			g.iter[i] = 0
		}
		for {
			f := g.dfs(s, t, Inf)
			if f == 0 {
				break
			}
			augPaths++
			total += f
		}
	}
	if metrics.Active(g.rec) {
		g.rec.DinicRuns.Inc()
		g.rec.DinicBFSRounds.Add(bfsRounds)
		g.rec.DinicAugPaths.Add(augPaths)
	}
	return total, err
}

// bfs builds the level graph; returns false when t is unreachable.
func (g *Graph) bfs(s, t int, queue *[]int) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	q := (*queue)[:0]
	g.level[s] = 0
	q = append(q, s)
	// Pop via an index rather than re-slicing so the backing array's
	// base never advances and the buffer stays reusable across runs.
	for head := 0; head < len(q); head++ {
		u := q[head]
		for _, e := range g.adj[u] {
			if e.cap > 0 && g.level[e.to] < 0 {
				g.level[e.to] = g.level[u] + 1
				q = append(q, e.to)
			}
		}
	}
	*queue = q
	return g.level[t] >= 0
}

// dfs pushes a blocking-flow augmentation from u toward t.
func (g *Graph) dfs(u, t int, f int64) int64 {
	if u == t {
		return f
	}
	for ; g.iter[u] < len(g.adj[u]); g.iter[u]++ {
		e := &g.adj[u][g.iter[u]]
		if e.cap <= 0 || g.level[e.to] != g.level[u]+1 {
			continue
		}
		d := g.dfs(e.to, t, min64(f, e.cap))
		if d > 0 {
			e.cap -= d
			g.adj[e.to][e.rev].cap += d
			return d
		}
	}
	return 0
}

// MinCutSide returns the set of nodes reachable from s in the residual
// graph after Run; these form the source side of a minimum cut.
func (g *Graph) MinCutSide(s int) []bool {
	side := make([]bool, len(g.adj))
	stack := []int{s}
	side[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if e.cap > 0 && !side[e.to] {
				side[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return side
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
