package maxflow

// Push-relabel (FIFO, with gap relabeling) — a second, independently
// implemented maximum-flow algorithm. Feasibility answers from Dinic
// drive every scheduling decision in the library, so this solver
// exists to differentially test them; it shares only the Graph
// representation.

import "repro/internal/metrics"

// RunPushRelabel computes the maximum s-t flow value using the
// push-relabel method. It operates on a private copy of the residual
// state, so it does not disturb flows computed by Run and can be
// called before or after it.
func (g *Graph) RunPushRelabel(s, t int) int64 {
	if s == t {
		panic("maxflow: source equals sink")
	}
	n := len(g.adj)
	// Copy residual capacities (original capacities, ignoring any flow
	// left by Run).
	res := make([][]int64, n)
	for u := range g.adj {
		res[u] = make([]int64, len(g.adj[u]))
		for i, e := range g.adj[u] {
			res[u][i] = e.org
		}
	}

	height := make([]int, n)
	excess := make([]int64, n)
	countAt := make([]int, 2*n+1) // nodes per height, for gap relabeling
	inQueue := make([]bool, n)

	height[s] = n
	countAt[0] = n - 1
	countAt[n]++

	var queue []int
	var pushes, relabels int64
	push := func(u, i int) {
		pushes++
		e := &g.adj[u][i]
		d := min64(excess[u], res[u][i])
		res[u][i] -= d
		res[e.to][e.rev] += d
		excess[u] -= d
		excess[e.to] += d
		if d > 0 && e.to != s && e.to != t && !inQueue[e.to] {
			inQueue[e.to] = true
			queue = append(queue, e.to)
		}
	}

	// Saturate source edges.
	excess[s] = 0
	for i := range g.adj[s] {
		excess[s] += res[s][i]
	}
	for i := range g.adj[s] {
		push(s, i)
	}

	relabel := func(u int) {
		relabels++
		old := height[u]
		minH := 2 * n
		for i, e := range g.adj[u] {
			if res[u][i] > 0 && height[e.to] < minH {
				minH = height[e.to]
			}
		}
		if minH < 2*n {
			height[u] = minH + 1
		} else {
			height[u] = 2 * n
		}
		countAt[old]--
		if height[u] <= 2*n {
			countAt[height[u]]++
		}
		// Gap heuristic: if no node remains at height old, lift every
		// node above old straight over n.
		if old < n && countAt[old] == 0 {
			for v := 0; v < n; v++ {
				if v != s && height[v] > old && height[v] <= n {
					countAt[height[v]]--
					height[v] = n + 1
					countAt[height[v]]++
				}
			}
		}
	}

	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		for excess[u] > 0 {
			pushed := false
			for i, e := range g.adj[u] {
				if res[u][i] > 0 && height[u] == height[e.to]+1 {
					push(u, i)
					pushed = true
					if excess[u] == 0 {
						break
					}
				}
			}
			if excess[u] == 0 {
				break
			}
			if !pushed {
				relabel(u)
				if height[u] > 2*n {
					break
				}
			}
		}
		if excess[u] > 0 && height[u] <= 2*n && !inQueue[u] && u != s && u != t {
			inQueue[u] = true
			queue = append(queue, u)
		}
	}
	if metrics.Active(g.rec) {
		g.rec.PushRelabelRuns.Inc()
		g.rec.PushRelabelPushes.Add(pushes)
		g.rec.PushRelabelRelabels.Add(relabels)
	}
	return excess[t]
}
