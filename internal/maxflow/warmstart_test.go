package maxflow

import (
	"math/rand"
	"testing"
)

// TestRaiseCapacityPreservesFlow: raising an edge's capacity keeps the
// routed flow intact, and re-running finds exactly the extra flow the
// larger capacity admits.
func TestRaiseCapacityPreservesFlow(t *testing.T) {
	g := New(4)
	// 0 -> 1 -> 3 and 0 -> 2 -> 3, bottlenecked at 1->3.
	e01 := g.AddEdge(0, 1, 10)
	e13 := g.AddEdge(1, 3, 3)
	g.AddEdge(0, 2, 5)
	g.AddEdge(2, 3, 5)
	if got := g.Run(0, 3); got != 8 {
		t.Fatalf("initial flow %d, want 8", got)
	}
	g.RaiseCapacity(e13, 7)
	if extra := g.Run(0, 3); extra != 4 {
		t.Fatalf("extra flow after raise %d, want 4", extra)
	}
	if f := g.Flow(e01); f != 7 {
		t.Fatalf("flow on 0->1 is %d, want 7", f)
	}
	if f := g.Flow(e13); f != 7 {
		t.Fatalf("flow on raised 1->3 is %d, want 7", f)
	}
}

// TestRaiseCapacityBelowCurrentPanics: lowering through RaiseCapacity
// is a bug, not a request.
func TestRaiseCapacityBelowCurrentPanics(t *testing.T) {
	g := New(2)
	e := g.AddEdge(0, 1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.RaiseCapacity(e, 4)
}

// TestWarmStartMatchesColdOnRandomGraphs: over random graphs and
// random monotone capacity raises, the cumulative warm-started flow
// must equal a cold solve of the final network.
func TestWarmStartMatchesColdOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(5005))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(8)
		type arc struct {
			from, to int
			cap      int64
		}
		var arcs []arc
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			arcs = append(arcs, arc{u, v, rng.Int63n(10)})
		}
		warm := New(n)
		var refs []EdgeRef
		for _, a := range arcs {
			refs = append(refs, warm.AddEdge(a.from, a.to, a.cap))
		}
		s, snk := 0, n-1
		total := warm.Run(s, snk)
		for step := 0; step < 5; step++ {
			// Raise a few random edges, then continue from the flow.
			for k := 0; k < 3 && len(arcs) > 0; k++ {
				i := rng.Intn(len(arcs))
				arcs[i].cap += rng.Int63n(6)
				warm.RaiseCapacity(refs[i], arcs[i].cap)
			}
			total += warm.Run(s, snk)
			cold := New(n)
			for _, a := range arcs {
				cold.AddEdge(a.from, a.to, a.cap)
			}
			if want := cold.Run(s, snk); total != want {
				t.Fatalf("trial %d step %d: warm cumulative %d, cold %d",
					trial, step, total, want)
			}
		}
	}
}

// TestRunCtxReusesQueue: repeated runs on one graph must not allocate
// — level, iter and the BFS queue all persist on the Graph.
func TestRunCtxReusesQueue(t *testing.T) {
	g := New(6)
	refs := []EdgeRef{
		g.AddEdge(0, 1, 4), g.AddEdge(0, 2, 4),
		g.AddEdge(1, 3, 3), g.AddEdge(2, 4, 3),
		g.AddEdge(3, 5, 4), g.AddEdge(4, 5, 4),
	}
	reset := func() {
		for _, r := range refs {
			g.SetCapacity(r, g.Capacity(r))
		}
	}
	g.Run(0, 5) // warm up scratch buffers
	avg := testing.AllocsPerRun(50, func() {
		reset()
		g.Run(0, 5)
	})
	if avg > 0 {
		t.Fatalf("repeated Run allocates %v objects/op, want 0", avg)
	}
}
