package maxflow

import (
	"math/rand"
	"testing"
)

func TestSimplePath(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	if got := g.Run(0, 2); got != 3 {
		t.Fatalf("flow = %d want 3", got)
	}
}

func TestParallelPaths(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 2, 3)
	g.AddEdge(1, 3, 4)
	g.AddEdge(2, 3, 1)
	if got := g.Run(0, 3); got != 3 {
		t.Fatalf("flow = %d want 3", got)
	}
}

func TestClassicDiamond(t *testing.T) {
	// The textbook example with a cross edge.
	g := New(6)
	g.AddEdge(0, 1, 10)
	g.AddEdge(0, 2, 10)
	g.AddEdge(1, 2, 2)
	g.AddEdge(1, 3, 4)
	g.AddEdge(1, 4, 8)
	g.AddEdge(2, 4, 9)
	g.AddEdge(3, 5, 10)
	g.AddEdge(4, 3, 6)
	g.AddEdge(4, 5, 10)
	if got := g.Run(0, 5); got != 19 {
		t.Fatalf("flow = %d want 19", got)
	}
}

func TestEdgeFlowsAndConservation(t *testing.T) {
	g := New(5)
	refs := []EdgeRef{
		g.AddEdge(0, 1, 4),
		g.AddEdge(0, 2, 2),
		g.AddEdge(1, 3, 3),
		g.AddEdge(2, 3, 3),
		g.AddEdge(3, 4, 5),
	}
	total := g.Run(0, 4)
	if total != 5 {
		t.Fatalf("flow = %d want 5", total)
	}
	for _, r := range refs {
		f := g.Flow(r)
		if f < 0 || f > g.Capacity(r) {
			t.Fatalf("edge flow %d outside [0,%d]", f, g.Capacity(r))
		}
	}
	if g.Flow(refs[0])+g.Flow(refs[1]) != total {
		t.Fatal("source outflow != total")
	}
	if g.Flow(refs[4]) != total {
		t.Fatal("sink inflow != total")
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 7)
	g.AddEdge(2, 3, 7)
	if got := g.Run(0, 3); got != 0 {
		t.Fatalf("flow = %d want 0", got)
	}
}

func TestZeroCapacityEdge(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 0)
	if got := g.Run(0, 1); got != 0 {
		t.Fatalf("flow = %d want 0", got)
	}
}

func TestResetAndSetCapacity(t *testing.T) {
	g := New(3)
	a := g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 2)
	if got := g.Run(0, 2); got != 2 {
		t.Fatalf("first run: %d", got)
	}
	g.Reset()
	g.SetCapacity(a, 1)
	if got := g.Run(0, 2); got != 1 {
		t.Fatalf("after SetCapacity: %d", got)
	}
}

func TestMinCutSide(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1) // bottleneck
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 3, 10)
	g.Run(0, 3)
	side := g.MinCutSide(0)
	if !side[0] || side[1] || side[2] || side[3] {
		t.Fatalf("cut side = %v, want only source reachable", side)
	}
}

// TestRandomAgainstBruteForce compares Dinic against a slow
// Ford-Fulkerson (DFS augmenting paths with unit steps) on random
// small graphs.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 4 + rng.Intn(5)
		type e struct {
			u, v int
			c    int64
		}
		var edges []e
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Intn(3) == 0 {
					edges = append(edges, e{u, v, int64(rng.Intn(6))})
				}
			}
		}
		g := New(n)
		for _, ed := range edges {
			g.AddEdge(ed.u, ed.v, ed.c)
		}
		got := g.Run(0, n-1)

		// Slow reference: adjacency-matrix Ford-Fulkerson.
		capm := make([][]int64, n)
		for i := range capm {
			capm[i] = make([]int64, n)
		}
		for _, ed := range edges {
			capm[ed.u][ed.v] += ed.c
		}
		var want int64
		for {
			parent := make([]int, n)
			for i := range parent {
				parent[i] = -1
			}
			parent[0] = 0
			queue := []int{0}
			for len(queue) > 0 && parent[n-1] < 0 {
				u := queue[0]
				queue = queue[1:]
				for v := 0; v < n; v++ {
					if capm[u][v] > 0 && parent[v] < 0 {
						parent[v] = u
						queue = append(queue, v)
					}
				}
			}
			if parent[n-1] < 0 {
				break
			}
			aug := int64(1 << 62)
			for v := n - 1; v != 0; v = parent[v] {
				if capm[parent[v]][v] < aug {
					aug = capm[parent[v]][v]
				}
			}
			for v := n - 1; v != 0; v = parent[v] {
				capm[parent[v]][v] -= aug
				capm[v][parent[v]] += aug
			}
			want += aug
		}
		if got != want {
			t.Fatalf("trial %d: dinic=%d reference=%d (n=%d edges=%v)", trial, got, want, n, edges)
		}
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := New(2)
	g.AddEdge(0, 1, -1)
}
