package maxflow

import "testing"

// decodeGraph turns fuzz bytes into a small flow network: data[0] picks
// the node count (2..8), and each following triple encodes one edge
// (from, to, capacity in 0..15). Self-loops are dropped; parallel edges
// and edges into the source or out of the sink are kept deliberately,
// since both solvers must agree on arbitrary networks.
func decodeGraph(data []byte) (*Graph, int, int) {
	n := 2 + int(data[0]%7)
	g := New(n)
	edges := 0
	for i := 1; i+2 < len(data) && edges < 24; i += 3 {
		from := int(data[i]) % n
		to := int(data[i+1]) % n
		if from == to {
			continue
		}
		g.AddEdge(from, to, int64(data[i+2]%16))
		edges++
	}
	return g, 0, n - 1
}

// FuzzDinicVsPushRelabel differentially tests the two independently
// implemented max-flow solvers: on every generated network the Dinic
// and push-relabel flow values must be identical. RunPushRelabel works
// on original capacities, so running it after Run is legitimate.
func FuzzDinicVsPushRelabel(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 1, 5})
	f.Add([]byte{3, 0, 1, 7, 1, 4, 3, 0, 2, 5, 2, 4, 9, 1, 2, 1})
	f.Add([]byte{6, 0, 3, 15, 3, 7, 15, 0, 1, 2, 1, 3, 2, 3, 0, 4})
	f.Add([]byte{2, 0, 1, 3, 1, 2, 3, 2, 3, 3, 3, 0, 3, 0, 2, 2, 1, 3, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			t.Skip()
		}
		g, s, snk := decodeGraph(data)
		dinic := g.Run(s, snk)
		pr := g.RunPushRelabel(s, snk)
		if dinic != pr {
			t.Fatalf("flow disagreement: Dinic=%d push-relabel=%d on %d-node graph (input %v)",
				dinic, pr, g.NumNodes(), data)
		}
		// Re-running push-relabel must be deterministic and undisturbed
		// by the flow Run left behind.
		if pr2 := g.RunPushRelabel(s, snk); pr2 != pr {
			t.Fatalf("push-relabel not reproducible: %d then %d", pr, pr2)
		}
	})
}
