package maxflow

import (
	"math/rand"
	"testing"
)

func TestPushRelabelSimple(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 2, 3)
	g.AddEdge(1, 3, 4)
	g.AddEdge(2, 3, 1)
	if got := g.RunPushRelabel(0, 3); got != 3 {
		t.Fatalf("flow = %d want 3", got)
	}
}

func TestPushRelabelDiamond(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 10)
	g.AddEdge(0, 2, 10)
	g.AddEdge(1, 2, 2)
	g.AddEdge(1, 3, 4)
	g.AddEdge(1, 4, 8)
	g.AddEdge(2, 4, 9)
	g.AddEdge(3, 5, 10)
	g.AddEdge(4, 3, 6)
	g.AddEdge(4, 5, 10)
	if got := g.RunPushRelabel(0, 5); got != 19 {
		t.Fatalf("flow = %d want 19", got)
	}
}

func TestPushRelabelDisconnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	if got := g.RunPushRelabel(0, 2); got != 0 {
		t.Fatalf("flow = %d want 0", got)
	}
}

// TestPushRelabelAgainstDinic differentially tests the two max-flow
// implementations on random graphs, including after a prior Run (the
// push-relabel pass must see original capacities).
func TestPushRelabelAgainstDinic(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 500; trial++ {
		n := 3 + rng.Intn(8)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Intn(3) == 0 {
					g.AddEdge(u, v, int64(rng.Intn(8)))
				}
			}
		}
		want := g.Run(0, n-1)
		got := g.RunPushRelabel(0, n-1)
		if got != want {
			t.Fatalf("trial %d: push-relabel %d vs dinic %d", trial, got, want)
		}
		// Also run push-relabel first on a fresh copy ordering.
		g.Reset()
		got2 := g.RunPushRelabel(0, n-1)
		if got2 != want {
			t.Fatalf("trial %d: push-relabel after reset %d vs %d", trial, got2, want)
		}
	}
}
