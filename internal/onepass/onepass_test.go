package onepass

import (
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/greedy"
	"repro/internal/instance"
)

func mk(t *testing.T, g int64, jobs ...instance.Job) *instance.Instance {
	t.Helper()
	in, err := instance.New(g, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRunSimple(t *testing.T) {
	in := mk(t, 2,
		instance.Job{Processing: 2, Release: 0, Deadline: 6},
		instance.Job{Processing: 1, Release: 0, Deadline: 3},
	)
	s, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	// Lazy activation opens slot 2 (forced by the p=1 job) and lets
	// the p=2 job ride along there, leaving one forced slot at 5.
	if s.NumActive() != 2 {
		t.Fatalf("active %d want 2", s.NumActive())
	}
}

func TestRunEmpty(t *testing.T) {
	in := mk(t, 1)
	s, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumActive() != 0 {
		t.Fatal("empty instance must yield empty schedule")
	}
}

func TestRunSharesForcedSlots(t *testing.T) {
	// A rigid job pins its window; the flexible job should ride along
	// in those forced slots instead of forcing new ones.
	in := mk(t, 2,
		instance.Job{Processing: 2, Release: 2, Deadline: 4}, // rigid at 2,3
		instance.Job{Processing: 2, Release: 0, Deadline: 8},
	)
	s, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	if s.NumActive() != 2 {
		t.Fatalf("active %d want 2 (flexible job shares the pinned slots)", s.NumActive())
	}
}

func TestRunInfeasible(t *testing.T) {
	in := mk(t, 1,
		instance.Job{Processing: 1, Release: 0, Deadline: 1},
		instance.Job{Processing: 1, Release: 0, Deadline: 1},
	)
	if _, err := Run(in); err == nil {
		t.Fatal("expected error on infeasible instance")
	}
}

// TestRunAlwaysFeasible: on random feasible instances (nested and
// general), the one-pass schedule is always valid, never beats OPT,
// and stays close to the left-to-right minimal-feasible greedy — the
// committed assignments may cost extra slots but never feasibility.
func TestRunAlwaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	worstExtra := int64(0)
	for trial := 0; trial < 80; trial++ {
		var in *instance.Instance
		if trial%2 == 0 {
			in = gen.RandomLaminar(rng, gen.DefaultLaminar(7, int64(1+rng.Intn(3))))
		} else {
			in = gen.RandomGeneral(rng, gen.DefaultGeneral(7, int64(1+rng.Intn(3))))
		}
		s, err := Run(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.Validate(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := greedy.MinimalFeasible(in, greedy.LeftToRight)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if extra := s.NumActive() - int64(len(res.Open)); extra > worstExtra {
			worstExtra = extra
		}
		opt, err := exact.Opt(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.NumActive() < opt {
			t.Fatalf("trial %d: %d slots below OPT %d — impossible", trial, s.NumActive(), opt)
		}
	}
	// The cost of commitment should be small on these sizes; a blowup
	// signals an assignment-extraction bug.
	if worstExtra > 3 {
		t.Fatalf("cost of commitment reached %d slots", worstExtra)
	}
}
