// Package onepass implements a single-pass, committed-assignment
// heuristic for active-time scheduling, inspired by the online
// variants the paper's related work points to (survey of Chau and
// Li). A fully online algorithm cannot guarantee feasibility here (an
// adversary releasing a tight job into the last shared slot defeats
// any early deactivation), so this is the honest middle ground: the
// job set is known, but the scheduler sweeps time once, deciding
// irrevocably at each slot whether to activate it and which jobs run
// in it — it can never revisit or reshuffle earlier slots.
//
// Rule (lazy activation): keep slot t closed unless doing so would
// make the remaining work infeasible even if every later slot were
// activated. When a slot is activated, the jobs to run are read off a
// max-flow certificate of that relaxation, which preserves the
// feasibility invariant by construction — the sweep always completes
// every job. Unlike the offline minimal-feasible greedy, the committed
// per-slot assignments cannot be reshuffled later, so the activation
// count can exceed the greedy's (the "cost of commitment");
// experiment E14 measures that cost empirically (typically zero to a
// few slots, never feasibility).
package onepass

import (
	"fmt"
	"sort"

	"repro/internal/instance"
	"repro/internal/maxflow"
	"repro/internal/sched"
)

// Run executes the lazy-activation algorithm and returns the resulting
// schedule. The instance must be feasible.
func Run(in *instance.Instance) (*sched.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	h, ok := in.Horizon()
	if !ok {
		return sched.New(in.G), nil
	}
	remaining := make([]int64, in.N())
	for i, j := range in.Jobs {
		remaining[i] = j.Processing
	}
	out := sched.New(in.G)

	for t := h.Start; t < h.End; t++ {
		// Pending jobs: released, unfinished, still inside window.
		var pending []int
		for i, j := range in.Jobs {
			if remaining[i] > 0 && j.Release <= t {
				if t >= j.Deadline {
					return nil, fmt.Errorf("onepass: job %d missed its deadline at %d (infeasible instance?)", i, t)
				}
				pending = append(pending, i)
			}
		}
		if len(pending) == 0 {
			continue
		}
		// Would closing t keep the relaxation feasible? (All slots
		// after t are assumed available; jobs not yet released only
		// constrain the future and are always schedulable there if the
		// instance was feasible, so checking pending-only is exact for
		// the activation decision of slot t... conservatively, include
		// future jobs too: they can only force t to stay closed-able.)
		if feasibleFrom(in, remaining, t+1) {
			continue
		}
		// Activate t and run the jobs a relaxation certificate places
		// in t.
		assigned := assignAt(in, remaining, t)
		if len(assigned) == 0 {
			return nil, fmt.Errorf("onepass: internal: slot %d forced open but no assignment", t)
		}
		for _, j := range assigned {
			out.Assign(t, j)
			remaining[j]--
		}
	}
	for i, r := range remaining {
		if r > 0 {
			return nil, fmt.Errorf("onepass: job %d unfinished (%d units left)", i, r)
		}
	}
	return out, nil
}

// feasibleFrom reports whether all remaining work (of every job,
// released or not) fits into the slots from 'from' onward, all open.
func feasibleFrom(in *instance.Instance, remaining []int64, from int64) bool {
	flow, _, want := relaxFlow(in, remaining, from)
	return flow == want
}

// assignAt opens slot at and extracts which jobs a max-flow
// certificate of the relaxation runs in it.
func assignAt(in *instance.Instance, remaining []int64, at int64) []int {
	flow, jobsInAt, want := relaxFlow(in, remaining, at)
	if flow != want {
		return nil
	}
	return jobsInAt
}

// relaxFlow builds the flow network over slots [from, maxDeadline) all
// open plus capacity for each remaining job, returns the max flow, the
// jobs assigned to slot 'from' in the flow, and the total demand.
func relaxFlow(in *instance.Instance, remaining []int64, from int64) (int64, []int, int64) {
	var maxD int64 = from
	for _, j := range in.Jobs {
		if j.Deadline > maxD {
			maxD = j.Deadline
		}
	}
	// Collect candidate slots (covered by some window, ≥ from).
	slotSet := map[int64]bool{}
	for i, j := range in.Jobs {
		if remaining[i] == 0 {
			continue
		}
		lo := j.Release
		if lo < from {
			lo = from
		}
		for t := lo; t < j.Deadline; t++ {
			slotSet[t] = true
		}
	}
	slots := make([]int64, 0, len(slotSet))
	for t := range slotSet {
		slots = append(slots, t)
	}
	sort.Slice(slots, func(a, b int) bool { return slots[a] < slots[b] })

	n := in.N()
	g := maxflow.New(2 + n + len(slots))
	src, snk := 0, 1
	slotNode := map[int64]int{}
	for k, t := range slots {
		slotNode[t] = 2 + n + k
		g.AddEdge(2+n+k, snk, in.G)
	}
	var want int64
	type jref struct {
		job int
		ref maxflow.EdgeRef
	}
	var atRefs []jref
	for i, j := range in.Jobs {
		if remaining[i] == 0 {
			continue
		}
		jn := 2 + i
		g.AddEdge(src, jn, remaining[i])
		want += remaining[i]
		lo := j.Release
		if lo < from {
			lo = from
		}
		for t := lo; t < j.Deadline; t++ {
			ref := g.AddEdge(jn, slotNode[t], 1)
			if t == from {
				atRefs = append(atRefs, jref{job: i, ref: ref})
			}
		}
	}
	flow := g.Run(src, snk)
	var inAt []int
	for _, r := range atRefs {
		if g.Flow(r.ref) > 0 {
			inAt = append(inAt, r.job)
		}
	}
	return flow, inAt, want
}
