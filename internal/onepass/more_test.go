package onepass

import (
	"math/rand"
	"testing"

	"repro/internal/gapfam"
	"repro/internal/gen"
	"repro/internal/instance"
)

// TestRunOnGapFamilies: the one-pass sweep completes every job on the
// constructed families too.
func TestRunOnGapFamilies(t *testing.T) {
	for name, in := range map[string]*instance.Instance{
		"NaturalGap2(4)":  gapfam.NaturalGap2(4),
		"Nested32(4)":     gapfam.Nested32(4),
		"Staircase(4,2)":  gapfam.Staircase(4, 2),
		"PinnedComb(5,2)": gapfam.PinnedComb(5, 2),
	} {
		s, err := Run(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(in); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestRunLazy: no slot before the first forced moment may be active.
func TestRunLazy(t *testing.T) {
	in, err := instance.New(1, []instance.Job{
		{Processing: 1, Release: 0, Deadline: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	// The only job is forced at slot 9 (last chance).
	if s.NumActive() != 1 || len(s.Slots[9]) != 1 {
		t.Fatalf("lazy activation should wait until slot 9: %v", s)
	}
}

// TestRunDeterministic: repeated runs yield identical schedules.
func TestRunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 20; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(7, 2))
		a, err := Run(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumActive() != b.NumActive() {
			t.Fatalf("trial %d: nondeterministic slot count", trial)
		}
		for slot, js := range a.Slots {
			if len(js) != len(b.Slots[slot]) {
				t.Fatalf("trial %d: slot %d differs", trial, slot)
			}
		}
	}
}

// TestRunMultiComponent: components far apart are handled in one
// sweep.
func TestRunMultiComponent(t *testing.T) {
	in, err := instance.New(2, []instance.Job{
		{Processing: 2, Release: 0, Deadline: 4},
		{Processing: 1, Release: 100, Deadline: 103},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	if s.NumActive() != 3 {
		t.Fatalf("active %d want 3", s.NumActive())
	}
}
