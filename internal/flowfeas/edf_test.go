package flowfeas

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/instance"
)

// edfFeasible runs slot-by-slot earliest-deadline-first on the open
// slots and reports whether every job completes.
func edfFeasible(in *instance.Instance, open []int64) bool {
	slots := append([]int64(nil), open...)
	sort.Slice(slots, func(a, b int) bool { return slots[a] < slots[b] })
	remaining := make([]int64, in.N())
	for i, j := range in.Jobs {
		remaining[i] = j.Processing
	}
	for _, t := range slots {
		var pending []int
		for i, j := range in.Jobs {
			if remaining[i] > 0 && j.Release <= t && t < j.Deadline {
				pending = append(pending, i)
			}
		}
		sort.Slice(pending, func(a, b int) bool {
			da, db := in.Jobs[pending[a]].Deadline, in.Jobs[pending[b]].Deadline
			if da != db {
				return da < db
			}
			return pending[a] < pending[b]
		})
		for k := 0; k < len(pending) && int64(k) < in.G; k++ {
			remaining[pending[k]]--
		}
	}
	for _, r := range remaining {
		if r > 0 {
			return false
		}
	}
	return true
}

// TestEDFSoundButIncomplete documents (and pins) a structural fact:
// slot-by-slot EDF is a sound but INCOMPLETE feasibility check in this
// model — it never accepts an infeasible slot set (every completed run
// is itself a schedule), but it can reject feasible ones, so it must
// not replace the max-flow check used throughout the library.
func TestEDFSoundButIncomplete(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	incomplete := 0
	for trial := 0; trial < 3000; trial++ {
		in := randomLaminarInstance(rng)
		all := in.SortedSlots()
		var open []int64
		for _, s := range all {
			if rng.Intn(2) == 0 {
				open = append(open, s)
			}
		}
		flowOK := CheckSlots(in, open)
		edfOK := edfFeasible(in, open)
		if edfOK && !flowOK {
			t.Fatalf("trial %d: EDF accepted an infeasible slot set — soundness broken", trial)
		}
		if flowOK && !edfOK {
			incomplete++
		}
	}
	t.Logf("flow-feasible sets rejected by EDF: %d/3000 (EDF is incomplete)", incomplete)
}
