package flowfeas

import (
	"context"
	"fmt"

	"repro/internal/lamtree"
	"repro/internal/maxflow"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// NodeNet is a reusable Lemma 4.1 node-indexed flow network over one
// fixed tree. The core solve pipeline probes the same tree many times
// with different count vectors (feasibility gate, post-rounding check,
// repair, minimalization sweeps, final placement); building the graph
// once and re-priming capacities per probe removes every per-probe
// graph allocation.
//
// Unlike the one-shot network, every job→node and node→sink edge
// exists from the start, with zero capacity where counts[i] == 0.
// Zero-capacity edges are invisible to Dinic — BFS and DFS both skip
// edges without residual capacity before reading anything else — so a
// cold probe on the prebuilt network performs the identical operation
// sequence (BFS rounds, augmenting paths, per-edge decisions) as a
// freshly built graph for the same counts. Operation counters are
// therefore byte-identical to the one-shot path.
//
// A NodeNet is not safe for concurrent use; the pipeline threads one
// per component solve.
type NodeNet struct {
	t *lamtree.Tree
	g *maxflow.Graph
	// srcEdges[j]: source → job j (capacity p_j).
	srcEdges []maxflow.EdgeRef
	// sinkEdges[i]: node i → sink (capacity g·counts[i]).
	sinkEdges []maxflow.EdgeRef
	// jobNodeEdges[j][k]: job j → node jobNodes[j][k] (capacity
	// counts[node]), over all of Des(k(j)) in tree order.
	jobNodeEdges [][]maxflow.EdgeRef
	jobNodes     [][]int
	// nodeJobEdges[i]: every job→node edge entering node i, for
	// capacity re-priming.
	nodeJobEdges [][]maxflow.EdgeRef
	last         []int64 // counts applied by the last prime
	want         int64   // Σ p_j
	flowed       int64   // total flow routed since the last cold prime
	gcap         int64   // per-slot capacity; t.G unless overridden
}

// NewNodeNet builds the reusable network for t. Source edges carry
// their final capacities (p_j never changes); node capacities start at
// zero until a Check, CheckWarm or Schedule call primes them.
func NewNodeNet(t *lamtree.Tree) *NodeNet {
	return NewNodeNetG(t, t.G)
}

// NewNodeNetG builds the network with a per-slot capacity g overriding
// t.G. The warm-start path uses it to re-probe a retained tree at a
// raised capacity without copying the tree (retained trees are shared
// read-only across requests).
func NewNodeNetG(t *lamtree.Tree, gcap int64) *NodeNet {
	m := t.M()
	n := len(t.Jobs)
	g := maxflow.New(2 + n + m)
	nn := &NodeNet{
		t:            t,
		g:            g,
		gcap:         gcap,
		srcEdges:     make([]maxflow.EdgeRef, n),
		sinkEdges:    make([]maxflow.EdgeRef, m),
		jobNodeEdges: make([][]maxflow.EdgeRef, n),
		jobNodes:     make([][]int, n),
		nodeJobEdges: make([][]maxflow.EdgeRef, m),
		last:         make([]int64, m),
	}
	// Same insertion order as the one-shot builder: node→sink edges
	// first, then per job its source edge and descendant edges. The
	// adjacency-list order of positive-capacity edges then matches a
	// fresh graph exactly.
	for i := 0; i < m; i++ {
		nn.sinkEdges[i] = g.AddEdge(2+n+i, 1, 0)
	}
	for jID, j := range t.Jobs {
		nn.srcEdges[jID] = g.AddEdge(0, 2+jID, j.Processing)
		nn.want += j.Processing
		for _, d := range t.Des(t.NodeOf[jID]) {
			ref := g.AddEdge(2+jID, 2+n+d, 0)
			nn.jobNodeEdges[jID] = append(nn.jobNodeEdges[jID], ref)
			nn.jobNodes[jID] = append(nn.jobNodes[jID], d)
			nn.nodeJobEdges[d] = append(nn.nodeJobEdges[d], ref)
		}
	}
	return nn
}

// validate panics on a malformed count vector, mirroring the one-shot
// path.
func (nn *NodeNet) validate(counts []int64) {
	if len(counts) != nn.t.M() {
		panic(fmt.Sprintf("flowfeas: counts length %d != m=%d", len(counts), nn.t.M()))
	}
	for i, c := range counts {
		if c < 0 || c > nn.t.Nodes[i].L {
			panic(fmt.Sprintf("flowfeas: counts[%d]=%d outside [0,%d]", i, c, nn.t.Nodes[i].L))
		}
	}
}

// prime sets every capacity for counts and clears all flow, restoring
// the exact state a freshly built graph would have.
func (nn *NodeNet) prime(counts []int64) {
	nn.validate(counts)
	for jID, j := range nn.t.Jobs {
		nn.g.SetCapacity(nn.srcEdges[jID], j.Processing)
	}
	for i, c := range counts {
		nn.g.SetCapacity(nn.sinkEdges[i], nn.gcap*c)
		for _, ref := range nn.nodeJobEdges[i] {
			nn.g.SetCapacity(ref, c)
		}
		nn.last[i] = c
	}
	nn.flowed = 0
}

// raise grows the capacities of nodes whose count increased since the
// last prime, preserving the flow already routed. Panics (via
// RaiseCapacity) if any count decreased.
func (nn *NodeNet) raise(counts []int64) {
	nn.validate(counts)
	for i, c := range counts {
		if c == nn.last[i] {
			continue
		}
		nn.g.RaiseCapacity(nn.sinkEdges[i], nn.gcap*c)
		for _, ref := range nn.nodeJobEdges[i] {
			nn.g.RaiseCapacity(ref, c)
		}
		nn.last[i] = c
	}
}

// run executes Dinic from the current flow and reports whether the
// cumulative flow saturates every job.
func (nn *NodeNet) run(ctx context.Context, rec *metrics.Recorder) (bool, error) {
	nn.g.SetRecorder(rec)
	got, err := nn.g.RunCtx(ctx, 0, 1)
	if err != nil {
		return false, err
	}
	nn.flowed += got
	return nn.flowed == nn.want, nil
}

// Check reports whether counts is feasible, recomputing the flow from
// scratch. The operation sequence — and so every Dinic counter — is
// identical to CheckNodeCountsCtx on a fresh graph.
func (nn *NodeNet) Check(ctx context.Context, counts []int64, rec *metrics.Recorder) (bool, error) {
	nn.prime(counts)
	return nn.run(ctx, rec)
}

// CheckWarm is Check for a monotone probe sequence: counts must be
// pointwise ≥ the previously applied vector. The existing flow remains
// feasible under grown capacities, so Dinic resumes from it and only
// searches for the missing flow instead of rebuilding everything —
// the warm-start path for the repair loop, where each probe opens one
// more slot than the last.
func (nn *NodeNet) CheckWarm(ctx context.Context, counts []int64, rec *metrics.Recorder) (bool, error) {
	nn.raise(counts)
	return nn.run(ctx, rec)
}

// Schedule runs a cold feasibility probe for counts and extracts the
// concrete schedule from the resulting flow, like
// ScheduleOnNodeCountsCtx but allocation-free on the network side.
func (nn *NodeNet) Schedule(ctx context.Context, counts []int64, rec *metrics.Recorder) (*sched.Schedule, error) {
	ok, err := nn.Check(ctx, counts, rec)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("flowfeas: node counts infeasible")
	}
	return extractNodeSchedule(nn.t, nn.g, nn.jobNodeEdges, nn.jobNodes, counts, nn.gcap)
}
