package flowfeas

import (
	"math/rand"
	"testing"

	"repro/internal/instance"
	"repro/internal/lamtree"
)

// TestCheckSlotsMonotone: adding open slots never breaks feasibility.
func TestCheckSlotsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	for trial := 0; trial < 150; trial++ {
		in := randomLaminarInstance(rng)
		all := in.SortedSlots()
		// Random subset and a superset of it.
		var sub, super []int64
		for _, s := range all {
			r := rng.Intn(3)
			if r == 0 {
				sub = append(sub, s)
				super = append(super, s)
			} else if r == 1 {
				super = append(super, s)
			}
		}
		if CheckSlots(in, sub) && !CheckSlots(in, super) {
			t.Fatalf("trial %d: feasibility not monotone (sub %v, super %v)", trial, sub, super)
		}
	}
}

// TestCheckNodeCountsMonotone: increasing any node count never breaks
// feasibility.
func TestCheckNodeCountsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(703))
	for trial := 0; trial < 120; trial++ {
		in := randomLaminarInstance(rng)
		tr, err := lamtree.Build(in)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int64, tr.M())
		for i := range counts {
			if tr.Nodes[i].L > 0 {
				counts[i] = rng.Int63n(tr.Nodes[i].L + 1)
			}
		}
		if !CheckNodeCounts(tr, counts) {
			continue
		}
		// Bump a random node with headroom.
		var cand []int
		for i := range counts {
			if counts[i] < tr.Nodes[i].L {
				cand = append(cand, i)
			}
		}
		if len(cand) == 0 {
			continue
		}
		counts[cand[rng.Intn(len(cand))]]++
		if !CheckNodeCounts(tr, counts) {
			t.Fatalf("trial %d: adding a slot broke feasibility", trial)
		}
	}
}

func TestScheduleOnSlotsEmptyInstance(t *testing.T) {
	in, err := instance.New(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ScheduleOnSlots(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumActive() != 0 {
		t.Fatal("empty instance should yield empty schedule")
	}
}

func TestCheckNodeCountsPanicsOnBadInput(t *testing.T) {
	in := mk(t, 1, instance.Job{Processing: 1, Release: 0, Deadline: 2})
	tr := buildTree(t, in)

	t.Run("wrong length", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		CheckNodeCounts(tr, []int64{1, 2, 3})
	})
	t.Run("count above L", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		CheckNodeCounts(tr, []int64{99})
	})
	t.Run("negative count", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		CheckNodeCounts(tr, []int64{-1})
	})
}

// TestScheduleUsesExactlyRequestedCapacity: ScheduleOnNodeCounts never
// assigns more jobs to a slot than g, and never uses slots outside the
// requested exclusive regions.
func TestScheduleWithinRequestedSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(709))
	for trial := 0; trial < 80; trial++ {
		in := randomLaminarInstance(rng)
		tr, err := lamtree.Build(in)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int64, tr.M())
		allowed := map[int64]bool{}
		for i := range counts {
			if tr.Nodes[i].L > 0 {
				counts[i] = rng.Int63n(tr.Nodes[i].L + 1)
				for _, s := range tr.ExclusiveSlots(i, counts[i]) {
					allowed[s] = true
				}
			}
		}
		if !CheckNodeCounts(tr, counts) {
			continue
		}
		s, err := ScheduleOnNodeCounts(tr, counts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for slot, js := range s.Slots {
			if len(js) == 0 {
				continue
			}
			if !allowed[slot] {
				t.Fatalf("trial %d: schedule uses slot %d outside requested regions", trial, slot)
			}
		}
	}
}
