package flowfeas

import (
	"math/rand"
	"testing"

	"repro/internal/instance"
	"repro/internal/lamtree"
)

func mk(t *testing.T, g int64, jobs ...instance.Job) *instance.Instance {
	t.Helper()
	in, err := instance.New(g, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestCheckSlotsBasic(t *testing.T) {
	in := mk(t, 1,
		instance.Job{Processing: 2, Release: 0, Deadline: 4},
		instance.Job{Processing: 1, Release: 0, Deadline: 4},
	)
	if !CheckSlots(in, []int64{0, 1, 2}) {
		t.Fatal("three slots for volume 3, g=1 should be feasible")
	}
	if CheckSlots(in, []int64{0, 1}) {
		t.Fatal("two slots cannot hold volume 3 at g=1")
	}
	// Slots outside windows do not help.
	if CheckSlots(in, []int64{0, 1, 9}) {
		t.Fatal("slot 9 is outside every window")
	}
	// Duplicates are ignored.
	if CheckSlots(in, []int64{0, 0, 1}) {
		t.Fatal("duplicate slots must not double capacity")
	}
}

func TestCheckSlotsPerJobSlotLimit(t *testing.T) {
	// One job with p=2 cannot run twice in one slot even with g=5.
	in := mk(t, 5, instance.Job{Processing: 2, Release: 0, Deadline: 4})
	if CheckSlots(in, []int64{1}) {
		t.Fatal("a single slot cannot hold two units of one job")
	}
	if !CheckSlots(in, []int64{1, 2}) {
		t.Fatal("two slots should suffice")
	}
}

func TestScheduleOnSlots(t *testing.T) {
	in := mk(t, 2,
		instance.Job{Processing: 2, Release: 0, Deadline: 4},
		instance.Job{Processing: 2, Release: 1, Deadline: 3},
		instance.Job{Processing: 1, Release: 0, Deadline: 2},
	)
	s, err := ScheduleOnSlots(in, []int64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	if _, err := ScheduleOnSlots(in, []int64{1, 2}); err == nil {
		t.Fatal("expected infeasible: volume 5 > 2 slots × g=2")
	}
}

func buildTree(t *testing.T, in *instance.Instance) *lamtree.Tree {
	t.Helper()
	tr, err := lamtree.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCheckNodeCounts(t *testing.T) {
	// Chain: [0,6) ⊃ [0,3). Outer job p=2, inner job p=1, g=2.
	in := mk(t, 2,
		instance.Job{Processing: 2, Release: 0, Deadline: 6},
		instance.Job{Processing: 1, Release: 0, Deadline: 3},
	)
	tr := buildTree(t, in)
	inner, outer := tr.NodeOf[1], tr.NodeOf[0]
	counts := make([]int64, tr.M())
	counts[inner] = 2
	if !CheckNodeCounts(tr, counts) {
		t.Fatal("2 inner slots hold both jobs (outer can use inner slots)")
	}
	counts[inner] = 1
	if CheckNodeCounts(tr, counts) {
		t.Fatal("1 slot cannot hold the p=2 outer job")
	}
	counts[inner], counts[outer] = 1, 1
	if !CheckNodeCounts(tr, counts) {
		t.Fatal("1 inner + 1 outer slot should work: outer job spans both, inner job shares the inner slot")
	}
	// Inner job cannot use outer slots.
	counts[inner], counts[outer] = 0, 3
	if CheckNodeCounts(tr, counts) {
		t.Fatal("inner job must not be schedulable on outer-only slots")
	}
}

func TestScheduleOnNodeCounts(t *testing.T) {
	in := mk(t, 2,
		instance.Job{Processing: 2, Release: 0, Deadline: 6},
		instance.Job{Processing: 2, Release: 0, Deadline: 3},
		instance.Job{Processing: 1, Release: 0, Deadline: 3},
	)
	tr := buildTree(t, in)
	counts := make([]int64, tr.M())
	counts[tr.NodeOf[1]] = 2
	counts[tr.NodeOf[0]] = 1
	s, err := ScheduleOnNodeCounts(tr, counts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	if s.NumActive() > 3 {
		t.Fatalf("schedule uses %d slots, counts allow 3", s.NumActive())
	}
}

// TestNodeVsSlotAgreement: for laminar instances, opening the leftmost
// c_i slots of every node region must agree with the node-count check.
func TestNodeVsSlotAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		in := randomLaminarInstance(rng)
		tr, err := lamtree.Build(in)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int64, tr.M())
		var slots []int64
		for i := range counts {
			if tr.Nodes[i].L > 0 {
				counts[i] = rng.Int63n(tr.Nodes[i].L + 1)
				slots = append(slots, tr.ExclusiveSlots(i, counts[i])...)
			}
		}
		nodeOK := CheckNodeCounts(tr, counts)
		slotOK := CheckSlots(in, slots)
		if nodeOK != slotOK {
			t.Fatalf("trial %d: node-count says %v, slot check says %v (counts=%v)",
				trial, nodeOK, slotOK, counts)
		}
		if nodeOK {
			s, err := ScheduleOnNodeCounts(tr, counts)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if err := s.Validate(in); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func randomLaminarInstance(rng *rand.Rand) *instance.Instance {
	var jobs []instance.Job
	var gen func(lo, hi int64, depth int)
	gen = func(lo, hi int64, depth int) {
		if hi-lo < 1 {
			return
		}
		nj := 1 + rng.Intn(2)
		for k := 0; k < nj; k++ {
			jobs = append(jobs, instance.Job{
				Processing: 1 + rng.Int63n(hi-lo),
				Release:    lo, Deadline: hi,
			})
		}
		if depth < 2 && hi-lo >= 2 && rng.Intn(2) == 0 {
			mid := lo + 1 + rng.Int63n(hi-lo-1)
			gen(lo, mid, depth+1)
			if rng.Intn(2) == 0 {
				gen(mid, hi, depth+1)
			}
		}
	}
	gen(0, 4+rng.Int63n(8), 0)
	in, err := instance.New(int64(1+rng.Intn(3)), jobs)
	if err != nil {
		panic(err)
	}
	return in
}
