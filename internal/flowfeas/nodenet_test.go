// gen imports flowfeas for its feasibility filter, so this test lives
// in the external package to use gen's generators without a cycle.
package flowfeas_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/flowfeas"
	"repro/internal/gen"
	"repro/internal/lamtree"
	"repro/internal/metrics"
)

func buildTree(t *testing.T, rng *rand.Rand, n int, g int64) *lamtree.Tree {
	t.Helper()
	in := gen.RandomLaminar(rng, gen.DefaultLaminar(n, g))
	tr, err := lamtree.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func randomCounts(rng *rand.Rand, tr *lamtree.Tree) []int64 {
	counts := make([]int64, tr.M())
	for i := range counts {
		counts[i] = rng.Int63n(tr.Nodes[i].L + 1)
	}
	return counts
}

// TestNodeNetMatchesOneShot: a reusable network's cold probe must give
// the same verdict AND the same Dinic operation counters as the
// one-shot builder, for arbitrary count vectors in arbitrary order.
// The prebuilt network carries zero-capacity edges the one-shot graph
// omits, so this pins down that they are invisible to the algorithm.
func TestNodeNetMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(7001))
	for trial := 0; trial < 10; trial++ {
		tr := buildTree(t, rng, 10+rng.Intn(20), int64(1+rng.Intn(3)))
		net := flowfeas.NewNodeNet(tr)
		for probe := 0; probe < 12; probe++ {
			counts := randomCounts(rng, tr)
			recNet, recOne := new(metrics.Recorder), new(metrics.Recorder)
			gotNet, err := net.Check(context.Background(), counts, recNet)
			if err != nil {
				t.Fatal(err)
			}
			gotOne := flowfeas.CheckNodeCountsRec(tr, counts, recOne)
			if gotNet != gotOne {
				t.Fatalf("trial %d probe %d: NodeNet says %v, one-shot says %v",
					trial, probe, gotNet, gotOne)
			}
			cn, co := recNet.Snapshot().Counters, recOne.Snapshot().Counters
			if !reflect.DeepEqual(cn, co) {
				t.Fatalf("trial %d probe %d: counters diverge\nnet:     %+v\none-shot: %+v",
					trial, probe, cn, co)
			}
		}
	}
}

// TestNodeNetWarmMatchesCold: warm-started probes over a monotone
// nondecreasing count sequence must return the same feasibility
// verdicts as independent cold checks.
func TestNodeNetWarmMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(7002))
	for trial := 0; trial < 10; trial++ {
		tr := buildTree(t, rng, 8+rng.Intn(16), int64(1+rng.Intn(3)))
		net := flowfeas.NewNodeNet(tr)
		counts := make([]int64, tr.M())
		// Start from all-closed, cold.
		warm, err := net.Check(context.Background(), counts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cold := flowfeas.CheckNodeCounts(tr, counts); warm != cold {
			t.Fatalf("trial %d initial: warm %v cold %v", trial, warm, cold)
		}
		for step := 0; step < 30; step++ {
			// Raise a random node that still has headroom.
			i := rng.Intn(tr.M())
			if counts[i] >= tr.Nodes[i].L {
				continue
			}
			counts[i] += 1 + rng.Int63n(tr.Nodes[i].L-counts[i])
			warm, err = net.CheckWarm(context.Background(), counts, nil)
			if err != nil {
				t.Fatal(err)
			}
			if cold := flowfeas.CheckNodeCounts(tr, counts); warm != cold {
				t.Fatalf("trial %d step %d: warm %v cold %v (counts %v)",
					trial, step, warm, cold, counts)
			}
		}
	}
}

// TestNodeNetScheduleMatchesOneShot: schedules extracted from the
// reusable network must be identical to the one-shot path's — same
// flow, same packing, slot for slot.
func TestNodeNetScheduleMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(7003))
	for trial := 0; trial < 10; trial++ {
		tr := buildTree(t, rng, 8+rng.Intn(16), int64(1+rng.Intn(3)))
		net := flowfeas.NewNodeNet(tr)
		// Fully open is always feasible for a feasible instance.
		counts := make([]int64, tr.M())
		for i := range counts {
			counts[i] = tr.Nodes[i].L
		}
		sNet, err := net.Schedule(context.Background(), counts, nil)
		if err != nil {
			t.Fatal(err)
		}
		sOne, err := flowfeas.ScheduleOnNodeCounts(tr, counts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sNet.Slots, sOne.Slots) {
			t.Fatalf("trial %d: schedules differ\nnet:     %v\none-shot: %v",
				trial, sNet.Slots, sOne.Slots)
		}
	}
}

// TestNodeNetReuseAllocsFree: after the first probe warmed up the
// internal buffers, repeated cold probes on a NodeNet must not
// allocate on the network side (the one-shot path rebuilds the whole
// graph every time — that is exactly what NodeNet exists to avoid).
func TestNodeNetReuseAllocsFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7004))
	tr := buildTree(t, rng, 16, 2)
	net := flowfeas.NewNodeNet(tr)
	counts := make([]int64, tr.M())
	for i := range counts {
		counts[i] = tr.Nodes[i].L
	}
	if _, err := net.Check(context.Background(), counts, nil); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := net.Check(context.Background(), counts, nil); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("repeated NodeNet.Check allocates %v objects/op, want 0", avg)
	}
}
