// Package flowfeas answers feasibility questions by maximum flow, the
// standard tool for active-time scheduling (paper §1): given a set of
// active slots, all jobs fit if and only if a bipartite flow network
// saturates every job's processing demand. Two network shapes are
// provided: slot-indexed (general instances) and node-indexed over a
// laminar tree (the network H of Lemma 4.1).
package flowfeas

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/instance"
	"repro/internal/lamtree"
	"repro/internal/maxflow"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// CheckSlots reports whether every job of in can be fully scheduled
// using only the given open slots (duplicates in open are ignored).
func CheckSlots(in *instance.Instance, open []int64) bool {
	return CheckSlotsRec(in, open, nil)
}

// CheckSlotsRec is CheckSlots reporting max-flow operation counts to
// rec (nil disables reporting).
func CheckSlotsRec(in *instance.Instance, open []int64, rec *metrics.Recorder) bool {
	_, ok := runSlotFlow(in, open, rec)
	return ok
}

// ScheduleOnSlots builds a concrete schedule using only the open
// slots; it returns an error when the slot set is infeasible.
func ScheduleOnSlots(in *instance.Instance, open []int64) (*sched.Schedule, error) {
	net, ok := runSlotFlow(in, open, nil)
	if !ok {
		return nil, fmt.Errorf("flowfeas: slot set of size %d infeasible", len(net.slots))
	}
	out := sched.New(in.G)
	for jID, edges := range net.jobSlotEdges {
		for k, ref := range edges {
			if net.g.Flow(ref) > 0 {
				out.Assign(net.jobSlots[jID][k], jID)
			}
		}
	}
	if err := out.Validate(in); err != nil {
		return nil, fmt.Errorf("flowfeas: internal: extracted schedule invalid: %w", err)
	}
	return out, nil
}

type slotNet struct {
	g            *maxflow.Graph
	slots        []int64
	jobSlotEdges [][]maxflow.EdgeRef // per job, edges to its usable slots
	jobSlots     [][]int64           // per job, the slot value of each edge
}

// runSlotFlow builds and runs the slot-indexed network:
// source -> job (p_j), job -> open slot in window (1), slot -> sink (g).
func runSlotFlow(in *instance.Instance, open []int64, rec *metrics.Recorder) (*slotNet, bool) {
	slots := dedupSorted(open)
	n := in.N()
	// Node layout: 0 = source, 1 = sink, 2..2+n-1 jobs, then slots.
	g := maxflow.New(2 + n + len(slots))
	g.SetRecorder(rec)
	src, snk := 0, 1
	slotNode := make(map[int64]int, len(slots))
	for k, t := range slots {
		id := 2 + n + k
		slotNode[t] = id
		g.AddEdge(id, snk, in.G)
	}
	net := &slotNet{
		g:            g,
		slots:        slots,
		jobSlotEdges: make([][]maxflow.EdgeRef, n),
		jobSlots:     make([][]int64, n),
	}
	var want int64
	for _, j := range in.Jobs {
		jn := 2 + j.ID
		g.AddEdge(src, jn, j.Processing)
		want += j.Processing
		// Open slots inside the window, via binary search on slots.
		lo := sort.Search(len(slots), func(i int) bool { return slots[i] >= j.Release })
		for k := lo; k < len(slots) && slots[k] < j.Deadline; k++ {
			ref := g.AddEdge(jn, slotNode[slots[k]], 1)
			net.jobSlotEdges[j.ID] = append(net.jobSlotEdges[j.ID], ref)
			net.jobSlots[j.ID] = append(net.jobSlots[j.ID], slots[k])
		}
	}
	got := g.Run(src, snk)
	return net, got == want
}

// CheckNodeCounts reports whether opening counts[i] slots inside each
// tree node i's exclusive region suffices to schedule all of the
// tree's jobs. This is the Lemma 4.1 network H: job j may use nodes in
// Des(k(j)); node i admits at most counts[i] units of any single job
// and g*counts[i] units in total. counts[i] must not exceed L(i).
func CheckNodeCounts(t *lamtree.Tree, counts []int64) bool {
	return CheckNodeCountsRec(t, counts, nil)
}

// CheckNodeCountsRec is CheckNodeCounts reporting max-flow operation
// counts to rec (nil disables reporting).
func CheckNodeCountsRec(t *lamtree.Tree, counts []int64, rec *metrics.Recorder) bool {
	ok, _ := CheckNodeCountsCtx(context.Background(), t, counts, rec)
	return ok
}

// CheckNodeCountsCtx is CheckNodeCountsRec with cooperative
// cancellation threaded into the underlying max-flow run; a canceled
// context surfaces as a non-nil error (never as "infeasible").
func CheckNodeCountsCtx(ctx context.Context, t *lamtree.Tree, counts []int64, rec *metrics.Recorder) (bool, error) {
	_, ok, err := runNodeFlow(ctx, t, counts, rec)
	if err != nil {
		return false, err
	}
	return ok, nil
}

// ScheduleOnNodeCounts builds a concrete schedule from per-node open
// counts: flows become per-node demands, counts[i] leftmost exclusive
// slots of node i are opened, and demands are column-packed into them.
func ScheduleOnNodeCounts(t *lamtree.Tree, counts []int64) (*sched.Schedule, error) {
	return ScheduleOnNodeCountsRec(t, counts, nil)
}

// ScheduleOnNodeCountsRec is ScheduleOnNodeCounts reporting max-flow
// operation counts to rec (nil disables reporting).
func ScheduleOnNodeCountsRec(t *lamtree.Tree, counts []int64, rec *metrics.Recorder) (*sched.Schedule, error) {
	return ScheduleOnNodeCountsCtx(context.Background(), t, counts, rec)
}

// ScheduleOnNodeCountsCtx is ScheduleOnNodeCountsRec with cooperative
// cancellation threaded into the underlying max-flow run.
func ScheduleOnNodeCountsCtx(ctx context.Context, t *lamtree.Tree, counts []int64, rec *metrics.Recorder) (*sched.Schedule, error) {
	net, ok, err := runNodeFlow(ctx, t, counts, rec)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("flowfeas: node counts infeasible")
	}
	return extractNodeSchedule(t, net.g, net.jobNodeEdges, net.jobNodes, counts, t.G)
}

// extractNodeSchedule turns the flow on a solved node network into a
// concrete schedule: per-node demands, column-packed into each node's
// counts[i] leftmost exclusive slots.
func extractNodeSchedule(t *lamtree.Tree, g *maxflow.Graph, jobNodeEdges [][]maxflow.EdgeRef, jobNodes [][]int, counts []int64, gcap int64) (*sched.Schedule, error) {
	out := sched.New(gcap)
	demands := make([][]sched.Demand, t.M())
	for jID, edges := range jobNodeEdges {
		for k, ref := range edges {
			if f := g.Flow(ref); f > 0 {
				node := jobNodes[jID][k]
				demands[node] = append(demands[node], sched.Demand{ID: jID, Units: f})
			}
		}
	}
	for i := range demands {
		if len(demands[i]) == 0 {
			continue
		}
		slots := t.ExclusiveSlots(i, counts[i])
		if err := sched.PackColumns(out, slots, gcap, demands[i]); err != nil {
			return nil, fmt.Errorf("flowfeas: internal: packing node %d: %w", i, err)
		}
	}
	return out, nil
}

type nodeNet struct {
	g            *maxflow.Graph
	jobNodeEdges [][]maxflow.EdgeRef
	jobNodes     [][]int
}

// runNodeFlow builds and runs the node-indexed network:
// source -> job (p_j), job -> node in Des(k(j)) (counts), node -> sink
// (g*counts).
func runNodeFlow(ctx context.Context, t *lamtree.Tree, counts []int64, rec *metrics.Recorder) (*nodeNet, bool, error) {
	m := t.M()
	if len(counts) != m {
		panic(fmt.Sprintf("flowfeas: counts length %d != m=%d", len(counts), m))
	}
	for i, c := range counts {
		if c < 0 || c > t.Nodes[i].L {
			panic(fmt.Sprintf("flowfeas: counts[%d]=%d outside [0,%d]", i, c, t.Nodes[i].L))
		}
	}
	n := len(t.Jobs)
	g := maxflow.New(2 + n + m)
	g.SetRecorder(rec)
	src, snk := 0, 1
	for i := 0; i < m; i++ {
		if counts[i] > 0 {
			g.AddEdge(2+n+i, snk, t.G*counts[i])
		}
	}
	net := &nodeNet{
		g:            g,
		jobNodeEdges: make([][]maxflow.EdgeRef, n),
		jobNodes:     make([][]int, n),
	}
	var want int64
	for jID, j := range t.Jobs {
		jn := 2 + jID
		g.AddEdge(src, jn, j.Processing)
		want += j.Processing
		for _, d := range t.Des(t.NodeOf[jID]) {
			if counts[d] == 0 {
				continue
			}
			ref := g.AddEdge(jn, 2+n+d, counts[d])
			net.jobNodeEdges[jID] = append(net.jobNodeEdges[jID], ref)
			net.jobNodes[jID] = append(net.jobNodes[jID], d)
		}
	}
	got, err := g.RunCtx(ctx, src, snk)
	if err != nil {
		return net, false, err
	}
	return net, got == want, nil
}

func dedupSorted(open []int64) []int64 {
	out := make([]int64, len(open))
	copy(out, open)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}
