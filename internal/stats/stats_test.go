package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev %g", s.StdDev)
	}
	if s.P50 != 3 {
		t.Fatalf("p50 %g", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.StdDev != 0 || s.P90 != 7 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if Percentile(xs, 0) != 10 || Percentile(xs, 100) != 40 {
		t.Fatal("extremes wrong")
	}
	if got := Percentile(xs, 50); math.Abs(got-25) > 1e-12 {
		t.Fatalf("p50 = %g want 25", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	// Input must not be reordered.
	if xs[0] != 10 {
		t.Fatal("Percentile mutated input")
	}
}

func TestBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			// Skip non-finite inputs and magnitudes whose sums
			// overflow float64.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true
			}
		}
		s := Summarize(xs)
		if s.N == 0 {
			return len(xs) == 0
		}
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.P50 && s.P50 <= s.Max &&
			s.P50 <= s.P90 && s.P90 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if !strings.Contains(Summarize([]float64{1}).String(), "n=1") {
		t.Fatal("String format")
	}
}
