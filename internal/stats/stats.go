// Package stats provides the small summary statistics used by the
// experiment harness: mean, min/max, standard deviation and
// percentiles over float64 samples.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary condenses a sample.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64
	P50    float64
	P90    float64
}

// Summarize computes a Summary; it returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.P50 = Percentile(xs, 50)
	s.P90 = Percentile(xs, 90)
	return s
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f min=%.4f p50=%.4f p90=%.4f max=%.4f sd=%.4f",
		s.N, s.Mean, s.Min, s.P50, s.P90, s.Max, s.StdDev)
}
