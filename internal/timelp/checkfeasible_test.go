package timelp

import (
	"testing"

	"repro/internal/instance"
)

// TestCheckFeasibleRejections drives every validation branch of
// CheckFeasible.
func TestCheckFeasibleRejections(t *testing.T) {
	in, err := instance.New(2, []instance.Job{
		{Processing: 1, Release: 0, Deadline: 2},
		{Processing: 1, Release: 0, Deadline: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	goodX := []float64{0.5, 0.5}
	goodY := map[[2]int]float64{
		{0, 0}: 0.5, {1, 0}: 0.5,
		{0, 1}: 0.5, {1, 1}: 0.5,
	}

	cases := []struct {
		name string
		x    []float64
		y    map[[2]int]float64
	}{
		{"wrong x length", []float64{0.5}, goodY},
		{"x above 1", []float64{1.5, 0.5}, goodY},
		{"x negative", []float64{-0.1, 0.5}, goodY},
		{"y slot out of range", goodX, map[[2]int]float64{{9, 0}: 0.5}},
		{"y job out of range", goodX, map[[2]int]float64{{0, 9}: 0.5}},
		{"y negative", goodX, map[[2]int]float64{
			{0, 0}: -0.5, {1, 0}: 0.5, {0, 1}: 0.5, {1, 1}: 0.5,
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := CheckFeasible(in, Natural, c.x, c.y, 1e-9); err == nil {
				t.Fatalf("%s: expected rejection", c.name)
			}
		})
	}

	// Slot load over g·x: 3 jobs at g=2 with x = 0.5.
	in3, err := instance.New(2, []instance.Job{
		{Processing: 1, Release: 0, Deadline: 1},
		{Processing: 1, Release: 0, Deadline: 1},
		{Processing: 1, Release: 0, Deadline: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1}
	y := map[[2]int]float64{{0, 0}: 1, {0, 1}: 1, {0, 2}: 1}
	if err := CheckFeasible(in3, Natural, x, y, 1e-9); err == nil {
		t.Fatal("capacity violation must be rejected")
	}

	// Window violation: y outside job's window.
	in2, err := instance.New(1, []instance.Job{
		{Processing: 1, Release: 0, Deadline: 1},
		{Processing: 1, Release: 1, Deadline: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	x2 := []float64{1, 1}
	y2 := map[[2]int]float64{{1, 0}: 1, {0, 1}: 1} // both misplaced
	if err := CheckFeasible(in2, Natural, x2, y2, 1e-9); err == nil {
		t.Fatal("out-of-window assignment must be rejected")
	}

	// The good point passes both LP kinds.
	if err := CheckFeasible(in, Natural, goodX, goodY, 1e-9); err != nil {
		t.Fatal(err)
	}
	// CW ceilings reject the fractional point: q over [0,2) is 0 per
	// job (slack 1)... both jobs have window [0,2) length 2, p=1, so
	// q_j([0,2)) = 1 each, total 2, ceil(2/2)=1 ≤ x-sum 1. Passes.
	if err := CheckFeasible(in, CalinescuWang, goodX, goodY, 1e-9); err != nil {
		t.Fatal(err)
	}
}
