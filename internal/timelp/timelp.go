// Package timelp implements the two time-indexed linear programs the
// paper discusses for the general active-time problem:
//
//   - the natural LP of Chang–Khuller–Mukherjee, whose integrality gap
//     is 2 − O(1/g) even on nested instances, and
//   - the Călinescu–Wang LP (paper Figure 3), which augments the
//     natural LP with ceiling constraints
//     Σ_{t∈I} x(t) ≥ ⌈Σ_j q_j(I)/g⌉ over every sub-interval I of the
//     horizon, where q_j(I) is the volume of job j that must fall
//     inside I even if every slot outside I were active.
//
// Both operate on arbitrary instances (windows need not be nested).
package timelp

import (
	"fmt"
	"math"

	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/simplex"
)

// Kind selects the LP formulation.
type Kind int

// LP formulations.
const (
	// Natural is the plain time-indexed LP.
	Natural Kind = iota
	// CalinescuWang adds the interval ceiling constraints of Fig. 3.
	CalinescuWang
)

func (k Kind) String() string {
	switch k {
	case Natural:
		return "natural"
	case CalinescuWang:
		return "calinescu-wang"
	}
	return "?"
}

// Solution is an optimal fractional solution of a time-indexed LP.
type Solution struct {
	// Slots lists the candidate slots, aligned with X.
	Slots []int64
	// X is the fractional activation of each slot.
	X []float64
	// Objective is Σ_t x(t).
	Objective float64
}

// QJ returns q_j(I): the minimum number of units of job j that any
// feasible schedule places inside I, even with all slots outside I
// active. With w = j's window, q_j(I) = max(0, p_j − |w \ I|).
func QJ(j instance.Job, I interval.Interval) int64 {
	w := j.Window()
	outside := w.Len() - w.OverlapLen(I)
	q := j.Processing - outside
	if q < 0 {
		return 0
	}
	return q
}

// Solve builds and optimizes the chosen LP for the instance. The
// variables are x(t) over the instance horizon and y(t,j) over each
// job's window.
func Solve(in *instance.Instance, kind Kind) (*Solution, error) {
	h, ok := in.Horizon()
	if !ok {
		return &Solution{}, nil
	}
	T := int(h.Len())
	slots := make([]int64, T)
	for t := range slots {
		slots[t] = h.Start + int64(t)
	}
	slotIdx := func(t int64) int { return int(t - h.Start) }

	// Variable layout: x(t) at [0,T), then y pairs.
	type pair struct{ slot, job int }
	var pairs []pair
	pairAt := make(map[[2]int]int)
	for j, job := range in.Jobs {
		for t := job.Release; t < job.Deadline; t++ {
			pairAt[[2]int{slotIdx(t), j}] = len(pairs)
			pairs = append(pairs, pair{slot: slotIdx(t), job: j})
		}
	}
	nv := T + len(pairs)
	p := simplex.NewProblem(nv)
	for t := 0; t < T; t++ {
		p.SetObjectiveCoef(t, 1)
	}
	yVar := func(k int) int { return T + k }

	// Job demands.
	byJob := make([][]int, in.N())
	bySlot := make([][]int, T)
	for k, pr := range pairs {
		byJob[pr.job] = append(byJob[pr.job], k)
		bySlot[pr.slot] = append(bySlot[pr.slot], k)
	}
	for j, job := range in.Jobs {
		terms := make([]simplex.Term, 0, len(byJob[j]))
		for _, k := range byJob[j] {
			terms = append(terms, simplex.Term{Var: yVar(k), Coef: 1})
		}
		p.Add(terms, simplex.GE, float64(job.Processing))
	}
	// Slot capacity and x(t) ≤ 1.
	for t := 0; t < T; t++ {
		terms := make([]simplex.Term, 0, len(bySlot[t])+1)
		for _, k := range bySlot[t] {
			terms = append(terms, simplex.Term{Var: yVar(k), Coef: 1})
		}
		terms = append(terms, simplex.Term{Var: t, Coef: -float64(in.G)})
		p.Add(terms, simplex.LE, 0)
		p.Add([]simplex.Term{{Var: t, Coef: 1}}, simplex.LE, 1)
	}
	// y(t,j) ≤ x(t).
	for k, pr := range pairs {
		p.Add([]simplex.Term{
			{Var: yVar(k), Coef: 1},
			{Var: pr.slot, Coef: -1},
		}, simplex.LE, 0)
	}

	if kind == CalinescuWang {
		addCeilingConstraints(p, in, h)
	}

	sol, err := p.Solve()
	if err != nil {
		return nil, fmt.Errorf("timelp(%v): %w", kind, err)
	}
	out := &Solution{Slots: slots, X: make([]float64, T), Objective: sol.Objective}
	copy(out.X, sol.X[:T])
	return out, nil
}

// addCeilingConstraints appends Σ_{t∈I} x(t) ≥ ⌈Σ_j q_j(I)/g⌉ for
// every sub-interval I of the horizon with a positive right-hand side.
func addCeilingConstraints(p *simplex.Problem, in *instance.Instance, h interval.Interval) {
	for a := h.Start; a < h.End; a++ {
		for b := a + 1; b <= h.End; b++ {
			I := interval.Interval{Start: a, End: b}
			var qsum int64
			for _, j := range in.Jobs {
				qsum += QJ(j, I)
			}
			if qsum == 0 {
				continue
			}
			rhs := (qsum + in.G - 1) / in.G
			terms := make([]simplex.Term, 0, b-a)
			for t := a; t < b; t++ {
				terms = append(terms, simplex.Term{Var: int(t - h.Start), Coef: 1})
			}
			p.Add(terms, simplex.GE, float64(rhs))
		}
	}
}

// CheckFeasible verifies that a hand-constructed fractional point
// (x, y) satisfies the chosen LP. x is indexed by slot offset from the
// horizon start; y maps (slot offset, job) to the fractional
// assignment. Used by the integrality-gap experiments to certify
// upper bounds on LP values without solving the LP.
func CheckFeasible(in *instance.Instance, kind Kind, x []float64, y map[[2]int]float64, tol float64) error {
	h, ok := in.Horizon()
	if !ok {
		return nil
	}
	T := int(h.Len())
	if len(x) != T {
		return fmt.Errorf("timelp: x has %d entries, horizon has %d", len(x), T)
	}
	for t, v := range x {
		if v < -tol || v > 1+tol {
			return fmt.Errorf("timelp: x[%d]=%g outside [0,1]", t, v)
		}
	}
	load := make([]float64, T)
	assigned := make([]float64, in.N())
	for key, v := range y {
		t, j := key[0], key[1]
		if t < 0 || t >= T || j < 0 || j >= in.N() {
			return fmt.Errorf("timelp: y key (%d,%d) out of range", t, j)
		}
		if v < -tol {
			return fmt.Errorf("timelp: y(%d,%d)=%g negative", t, j, v)
		}
		abs := h.Start + int64(t)
		job := in.Jobs[j]
		if abs < job.Release || abs >= job.Deadline {
			return fmt.Errorf("timelp: y(%d,%d) outside job window", t, j)
		}
		if v > x[t]+tol {
			return fmt.Errorf("timelp: y(%d,%d)=%g > x=%g", t, j, v, x[t])
		}
		load[t] += v
		assigned[j] += v
	}
	for t := range load {
		if load[t] > float64(in.G)*x[t]+tol {
			return fmt.Errorf("timelp: slot %d load %g > g·x=%g", t, load[t], float64(in.G)*x[t])
		}
	}
	for j := range assigned {
		if assigned[j] < float64(in.Jobs[j].Processing)-tol {
			return fmt.Errorf("timelp: job %d assigned %g < p=%d", j, assigned[j], in.Jobs[j].Processing)
		}
	}
	if kind == CalinescuWang {
		for a := h.Start; a < h.End; a++ {
			for b := a + 1; b <= h.End; b++ {
				I := interval.Interval{Start: a, End: b}
				var qsum int64
				for _, j := range in.Jobs {
					qsum += QJ(j, I)
				}
				if qsum == 0 {
					continue
				}
				rhs := math.Ceil(float64(qsum) / float64(in.G))
				var got float64
				for t := a; t < b; t++ {
					got += x[int(t-h.Start)]
				}
				if got < rhs-tol {
					return fmt.Errorf("timelp: ceiling on %v: %g < %g", I, got, rhs)
				}
			}
		}
	}
	return nil
}
