package timelp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gapfam"
	"repro/internal/instance"
	"repro/internal/interval"
)

// TestQJProperties: q_j is monotone in I, bounded by p_j, zero on
// intervals disjoint from the window, and q over the full window is
// exactly p_j.
func TestQJProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 500; trial++ {
		r := int64(rng.Intn(10))
		w := 1 + int64(rng.Intn(8))
		p := 1 + rng.Int63n(w)
		j := instance.Job{Processing: p, Release: r, Deadline: r + w}

		a := int64(rng.Intn(16))
		b := a + 1 + int64(rng.Intn(8))
		I := interval.New(a, b)
		q := QJ(j, I)
		if q < 0 || q > p {
			t.Fatalf("q=%d outside [0,%d]", q, p)
		}
		if I.Disjoint(j.Window()) && q != 0 {
			t.Fatalf("disjoint interval with q=%d", q)
		}
		if QJ(j, j.Window()) != p {
			t.Fatal("q over the full window must be p")
		}
		// Monotone: enlarging I cannot decrease q.
		bigger := interval.New(a, b+1+int64(rng.Intn(4)))
		if QJ(j, bigger) < q {
			t.Fatalf("q not monotone: %v -> %v", I, bigger)
		}
		// Complement bound: at most |window \ I| units can be outside.
		outside := j.Window().Len() - j.Window().OverlapLen(I)
		if q < p-outside {
			t.Fatalf("q=%d below forced minimum %d", q, p-outside)
		}
	}
}

// TestCWFractionalOfIntegral: scaling the all-open integral solution
// is feasible for both LPs, so LP values never exceed the number of
// covered slots.
func TestLPAtMostAllOpen(t *testing.T) {
	for _, g := range []int64{2, 4} {
		in := gapfam.Nested32(g)
		allOpen := float64(len(in.SortedSlots()))
		for _, kind := range []Kind{Natural, CalinescuWang} {
			sol, err := Solve(in, kind)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Objective > allOpen+1e-6 {
				t.Fatalf("g=%d %v: LP %g exceeds all-open %g", g, kind, sol.Objective, allOpen)
			}
			if sol.Objective < 1 {
				t.Fatalf("g=%d %v: LP %g below 1", g, kind, sol.Objective)
			}
		}
	}
}

// TestSolutionSlotsAligned: X is indexed by the returned slot list and
// the objective equals ΣX.
func TestSolutionSlotsAligned(t *testing.T) {
	in := gapfam.NaturalGap2(3)
	sol, err := Solve(in, Natural)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Slots) != len(sol.X) {
		t.Fatalf("slots %d vs X %d", len(sol.Slots), len(sol.X))
	}
	var sum float64
	for _, x := range sol.X {
		sum += x
	}
	if math.Abs(sum-sol.Objective) > 1e-6 {
		t.Fatalf("ΣX %g != objective %g", sum, sol.Objective)
	}
}

func TestEmptyInstance(t *testing.T) {
	in, err := instance.New(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(in, Natural)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 0 {
		t.Fatalf("objective %g", sol.Objective)
	}
	if err := CheckFeasible(in, CalinescuWang, nil, nil, 1e-9); err != nil {
		t.Fatal(err)
	}
}
