package timelp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/instance"
	"repro/internal/interval"
)

func mk(t *testing.T, g int64, jobs ...instance.Job) *instance.Instance {
	t.Helper()
	in, err := instance.New(g, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestQJ(t *testing.T) {
	j := instance.Job{Processing: 3, Release: 0, Deadline: 5}
	cases := []struct {
		I    interval.Interval
		want int64
	}{
		{interval.New(0, 5), 3},  // whole window
		{interval.New(0, 3), 1},  // 2 slots outside
		{interval.New(0, 2), 0},  // 3 slots outside
		{interval.New(1, 4), 1},  // 2 outside
		{interval.New(5, 9), 0},  // disjoint
		{interval.New(0, 50), 3}, // superset
	}
	for _, c := range cases {
		if got := QJ(j, c.I); got != c.want {
			t.Errorf("QJ(%v) = %d want %d", c.I, got, c.want)
		}
	}
}

func TestNaturalLPSingleRigid(t *testing.T) {
	in := mk(t, 1, instance.Job{Processing: 3, Release: 0, Deadline: 3})
	sol, err := Solve(in, Natural)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-3) > 1e-6 {
		t.Fatalf("objective %g want 3", sol.Objective)
	}
}

// TestNaturalGapFamily reproduces the paper's observation that the
// natural LP's gap approaches 2 on a *nested* instance: g+1 unit jobs
// in a 2-slot window have LP value (g+1)/g but OPT 2.
func TestNaturalGapFamily(t *testing.T) {
	for _, g := range []int64{2, 4, 8} {
		jobs := make([]instance.Job, g+1)
		for i := range jobs {
			jobs[i] = instance.Job{Processing: 1, Release: 0, Deadline: 2}
		}
		in := mk(t, g, jobs...)
		sol, err := Solve(in, Natural)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(g+1) / float64(g)
		if math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("g=%d: natural LP %g want %g", g, sol.Objective, want)
		}
		// The CW ceiling constraint on I = [0,2) forces value 2.
		cw, err := Solve(in, CalinescuWang)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cw.Objective-2) > 1e-6 {
			t.Fatalf("g=%d: CW LP %g want 2", g, cw.Objective)
		}
	}
}

func TestLPsAreLowerBoundsAndOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		in := gen.RandomGeneral(rng, gen.GeneralParams{
			Jobs: 4, Horizon: 8, G: int64(1 + rng.Intn(3)), MaxWindow: 5, MaxProcessing: 3,
		})
		nat, err := Solve(in, Natural)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cw, err := Solve(in, CalinescuWang)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, _, err := exact.SolveGeneral(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if nat.Objective > cw.Objective+1e-6 {
			t.Fatalf("trial %d: natural %g > CW %g (CW is a strengthening)",
				trial, nat.Objective, cw.Objective)
		}
		if cw.Objective > float64(opt)+1e-6 {
			t.Fatalf("trial %d: CW LP %g exceeds OPT %d", trial, cw.Objective, opt)
		}
	}
}

func TestCheckFeasible(t *testing.T) {
	in := mk(t, 2,
		instance.Job{Processing: 1, Release: 0, Deadline: 2},
		instance.Job{Processing: 1, Release: 0, Deadline: 2},
	)
	x := []float64{0.5, 0.5}
	y := map[[2]int]float64{
		{0, 0}: 0.5, {1, 0}: 0.5,
		{0, 1}: 0.5, {1, 1}: 0.5,
	}
	if err := CheckFeasible(in, Natural, x, y, 1e-9); err != nil {
		t.Fatal(err)
	}
	// Violate y ≤ x.
	bad := map[[2]int]float64{{0, 0}: 0.9, {1, 0}: 0.1, {0, 1}: 0.5, {1, 1}: 0.5}
	if err := CheckFeasible(in, Natural, x, bad, 1e-9); err == nil {
		t.Fatal("expected y>x violation")
	}
	// Under-assigned job.
	under := map[[2]int]float64{{0, 0}: 0.5, {1, 0}: 0.5, {0, 1}: 0.5}
	if err := CheckFeasible(in, Natural, x, under, 1e-9); err == nil {
		t.Fatal("expected under-assignment violation")
	}
	// CW ceiling: one slot fractional 0.5 can't satisfy ceil(2/2)=1 on [0,1)?
	// q_j([0,1)) = 0 for slack jobs, so build a rigid case instead.
	rigid := mk(t, 1, instance.Job{Processing: 2, Release: 0, Deadline: 2})
	xr := []float64{0.9, 0.9}
	yr := map[[2]int]float64{{0, 0}: 0.9, {1, 0}: 0.9}
	if err := CheckFeasible(rigid, CalinescuWang, xr, yr, 1e-9); err == nil {
		t.Fatal("expected ceiling violation: q([0,1))=1 needs x(0) >= 1")
	}
}

func TestKindString(t *testing.T) {
	if Natural.String() != "natural" || CalinescuWang.String() != "calinescu-wang" {
		t.Fatal("Kind.String broken")
	}
}
