package ratsimplex

import (
	"math/big"
	"testing"
)

// TestDegenerateVertex: many constraints meet at one point; Bland's
// rule must terminate and report the right optimum.
func TestDegenerateVertex(t *testing.T) {
	// min -x0 - x1 s.t. x0 ≤ 1, x1 ≤ 1, x0 + x1 ≤ 2 (redundant at the
	// optimum), x0 - x1 ≤ 0 duplicated. Optimum (1,1): -2.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, rat(-1, 1))
	p.SetObjectiveCoef(1, rat(-1, 1))
	p.Add([]Term{T(0, 1, 1)}, LE, rat(1, 1))
	p.Add([]Term{T(1, 1, 1)}, LE, rat(1, 1))
	p.Add([]Term{T(0, 1, 1), T(1, 1, 1)}, LE, rat(2, 1))
	p.Add([]Term{T(0, 1, 1), T(1, -1, 1)}, LE, rat(0, 1))
	p.Add([]Term{T(0, 1, 1), T(1, -1, 1)}, LE, rat(0, 1))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective.Cmp(rat(-2, 1)) != 0 {
		t.Fatalf("objective %v want -2", sol.Objective)
	}
}

// TestRedundantEqualities: duplicated equality rows produce redundant
// artificials that must be driven out or zeroed in phase 1.
func TestRedundantEqualities(t *testing.T) {
	p := NewProblem(2)
	p.SetObjectiveCoef(0, rat(1, 1))
	p.SetObjectiveCoef(1, rat(1, 1))
	p.Add([]Term{T(0, 1, 1), T(1, 1, 1)}, EQ, rat(3, 1))
	p.Add([]Term{T(0, 2, 1), T(1, 2, 1)}, EQ, rat(6, 1))
	p.Add([]Term{T(0, 1, 1), T(1, 1, 1)}, EQ, rat(3, 1))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective.Cmp(rat(3, 1)) != 0 {
		t.Fatalf("objective %v want 3", sol.Objective)
	}
}

// TestLargeCoefficientsStayExact: values far beyond float precision
// remain exact in rational arithmetic.
func TestLargeCoefficientsStayExact(t *testing.T) {
	// min x s.t. (10^18 + 1)·x ≥ 10^18 + 1 → x = 1 exactly.
	huge := new(big.Rat).SetInt64(1)
	big18 := new(big.Rat).SetInt64(1_000_000_000_000_000_000)
	huge.Add(huge, big18)
	p := NewProblem(1)
	p.SetObjectiveCoef(0, rat(1, 1))
	p.Add([]Term{{Var: 0, Coef: huge}}, GE, huge)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective.Cmp(rat(1, 1)) != 0 {
		t.Fatalf("objective %v want exactly 1", sol.Objective)
	}
	// And a genuinely non-float-representable optimum: x = huge/3.
	q := NewProblem(1)
	q.SetObjectiveCoef(0, rat(1, 1))
	q.Add([]Term{T(0, 3, 1)}, GE, huge)
	qsol, err := q.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Rat).Quo(huge, rat(3, 1))
	if qsol.Objective.Cmp(want) != 0 {
		t.Fatalf("objective %v want %v", qsol.Objective, want)
	}
}

// TestInputsNotMutated: Add and SetObjectiveCoef must deep-copy their
// rational arguments.
func TestInputsNotMutated(t *testing.T) {
	coef := rat(2, 1)
	rhs := rat(4, 1)
	p := NewProblem(1)
	p.SetObjectiveCoef(0, coef)
	p.Add([]Term{{Var: 0, Coef: coef}}, GE, rhs)
	if _, err := p.Solve(); err != nil {
		t.Fatal(err)
	}
	if coef.Cmp(rat(2, 1)) != 0 || rhs.Cmp(rat(4, 1)) != 0 {
		t.Fatalf("solver mutated caller values: coef=%v rhs=%v", coef, rhs)
	}
}
