// Package ratsimplex is an exact two-phase primal simplex solver over
// rational arithmetic (math/big.Rat). It solves the same problem class
// as internal/simplex —
//
//	minimize c·x  subject to  a_k·x (≤|=|≥) b_k,  x ≥ 0
//
// — but with no rounding error: Bland's rule is used exclusively, so
// termination is guaranteed, and results are exact. The paper's
// algorithm assumes an exact LP oracle; this package provides one for
// instances where the float64 solver's 1e-7 snapping would be a leap
// of faith. It is orders of magnitude slower than the float solver and
// intended for small LPs and cross-checking.
package ratsimplex

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Op is a constraint sense.
type Op int

// Constraint senses.
const (
	LE Op = iota
	GE
	EQ
)

// Term is one coefficient of a constraint or the objective.
type Term struct {
	Var  int
	Coef *big.Rat
}

// T builds a term from an int64 numerator/denominator pair.
func T(v int, num, den int64) Term { return Term{Var: v, Coef: big.NewRat(num, den)} }

type constraint struct {
	terms []Term
	op    Op
	rhs   *big.Rat
}

// Problem is a rational LP under construction.
type Problem struct {
	nvars int
	c     []*big.Rat
	cons  []constraint
	rec   *metrics.Recorder
	tsp   *trace.Span
}

// SetRecorder attaches a metrics recorder; each Solve then reports its
// exact-arithmetic pivot counts to it. A nil recorder disables
// reporting.
func (p *Problem) SetRecorder(r *metrics.Recorder) { p.rec = r }

// SetTraceSpan attaches a parent trace span; each Solve then records a
// "ratsimplex" child span carrying problem dimensions and the exact
// pivot count. A nil span disables tracing.
func (p *Problem) SetTraceSpan(sp *trace.Span) { p.tsp = sp }

// NewProblem returns a problem with nvars non-negative variables.
func NewProblem(nvars int) *Problem {
	c := make([]*big.Rat, nvars)
	for i := range c {
		c[i] = new(big.Rat)
	}
	return &Problem{nvars: nvars, c: c}
}

// SetObjectiveCoef sets the minimization coefficient of variable v.
func (p *Problem) SetObjectiveCoef(v int, coef *big.Rat) {
	p.check(v)
	p.c[v] = new(big.Rat).Set(coef)
}

// Add appends the constraint terms·x (op) rhs.
func (p *Problem) Add(terms []Term, op Op, rhs *big.Rat) {
	cp := make([]Term, len(terms))
	for i, t := range terms {
		p.check(t.Var)
		cp[i] = Term{Var: t.Var, Coef: new(big.Rat).Set(t.Coef)}
	}
	p.cons = append(p.cons, constraint{terms: cp, op: op, rhs: new(big.Rat).Set(rhs)})
}

func (p *Problem) check(v int) {
	if v < 0 || v >= p.nvars {
		panic(fmt.Sprintf("ratsimplex: variable %d out of range [0,%d)", v, p.nvars))
	}
}

// Solution is an exact optimal solution.
type Solution struct {
	X         []*big.Rat
	Objective *big.Rat
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("ratsimplex: infeasible")
	ErrUnbounded  = errors.New("ratsimplex: unbounded")
)

type tableau struct {
	m, n   int
	a      [][]*big.Rat
	rhs    []*big.Rat
	basis  []int
	pivots int64 // every exact pivot, published once per Solve
}

// Solve runs exact two-phase simplex with Bland's pivoting rule.
func (p *Problem) Solve() (*Solution, error) {
	m := len(p.cons)
	nStruct := p.nvars
	nSlack, nArt := 0, 0
	for _, con := range p.cons {
		op := con.op
		if con.rhs.Sign() < 0 {
			op = flip(op)
		}
		switch op {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	n := nStruct + nSlack + nArt
	t := &tableau{m: m, n: n,
		a:     make([][]*big.Rat, m),
		rhs:   make([]*big.Rat, m),
		basis: make([]int, m),
	}
	sp := p.tsp.StartChild("ratsimplex",
		trace.Int("vars", int64(p.nvars)), trace.Int("constraints", int64(m)))
	defer func() {
		sp.SetAttr(trace.Int("pivots", t.pivots))
		sp.End()
		if metrics.Active(p.rec) {
			p.rec.RatSolves.Inc()
			p.rec.RatPivots.Add(t.pivots)
		}
	}()
	artCols := make([]int, 0, nArt)
	slackAt, artAt := nStruct, nStruct+nSlack

	for r, con := range p.cons {
		row := make([]*big.Rat, n)
		for j := range row {
			row[j] = new(big.Rat)
		}
		sign := int64(1)
		rhs := new(big.Rat).Set(con.rhs)
		op := con.op
		if rhs.Sign() < 0 {
			sign = -1
			rhs.Neg(rhs)
			op = flip(op)
		}
		signR := big.NewRat(sign, 1)
		for _, term := range con.terms {
			tmp := new(big.Rat).Mul(signR, term.Coef)
			row[term.Var].Add(row[term.Var], tmp)
		}
		switch op {
		case LE:
			row[slackAt].SetInt64(1)
			t.basis[r] = slackAt
			slackAt++
		case GE:
			row[slackAt].SetInt64(-1)
			slackAt++
			row[artAt].SetInt64(1)
			t.basis[r] = artAt
			artCols = append(artCols, artAt)
			artAt++
		case EQ:
			row[artAt].SetInt64(1)
			t.basis[r] = artAt
			artCols = append(artCols, artAt)
			artAt++
		}
		t.a[r] = row
		t.rhs[r] = rhs
	}

	if nArt > 0 {
		obj := make([]*big.Rat, n)
		for j := range obj {
			obj[j] = new(big.Rat)
		}
		for _, c := range artCols {
			obj[c].SetInt64(1)
		}
		val, unbounded := t.optimize(obj, nil)
		if unbounded {
			return nil, fmt.Errorf("ratsimplex: internal: phase 1 unbounded")
		}
		if val.Sign() > 0 {
			return nil, ErrInfeasible
		}
		t.driveOutArtificials(nStruct + nSlack)
	}

	obj := make([]*big.Rat, n)
	for j := range obj {
		obj[j] = new(big.Rat)
	}
	for v := 0; v < nStruct; v++ {
		obj[v].Set(p.c[v])
	}
	barred := make([]bool, n)
	for _, c := range artCols {
		barred[c] = true
	}
	val, unbounded := t.optimize(obj, barred)
	if unbounded {
		return nil, ErrUnbounded
	}
	x := make([]*big.Rat, p.nvars)
	for i := range x {
		x[i] = new(big.Rat)
	}
	for r, b := range t.basis {
		if b < p.nvars {
			x[b].Set(t.rhs[r])
		}
	}
	return &Solution{X: x, Objective: val}, nil
}

func flip(op Op) Op {
	switch op {
	case LE:
		return GE
	case GE:
		return LE
	}
	return EQ
}

// optimize runs Bland-rule simplex for min obj·x from the current
// basic feasible point; it returns the optimum and an unbounded flag.
func (t *tableau) optimize(obj []*big.Rat, barred []bool) (*big.Rat, bool) {
	cost := make([]*big.Rat, t.n)
	for j := range cost {
		cost[j] = new(big.Rat).Set(obj[j])
	}
	z := new(big.Rat)
	tmp := new(big.Rat)
	for r, b := range t.basis {
		if obj[b].Sign() == 0 {
			continue
		}
		cb := obj[b]
		for j := 0; j < t.n; j++ {
			if t.a[r][j].Sign() != 0 {
				tmp.Mul(cb, t.a[r][j])
				cost[j].Sub(cost[j], tmp)
			}
		}
		tmp.Mul(cb, t.rhs[r])
		z.Sub(z, tmp)
	}

	ratio := new(big.Rat)
	best := new(big.Rat)
	for {
		// Bland: first eligible column with negative reduced cost.
		enter := -1
		for j := 0; j < t.n; j++ {
			if barred != nil && barred[j] {
				continue
			}
			if cost[j].Sign() < 0 {
				enter = j
				break
			}
		}
		if enter < 0 {
			return new(big.Rat).Neg(z), false
		}
		// Ratio test, Bland tie-break on smallest basis column.
		leave := -1
		for r := 0; r < t.m; r++ {
			if t.a[r][enter].Sign() <= 0 {
				continue
			}
			ratio.Quo(t.rhs[r], t.a[r][enter])
			if leave < 0 || ratio.Cmp(best) < 0 ||
				(ratio.Cmp(best) == 0 && t.basis[r] < t.basis[leave]) {
				leave = r
				best.Set(ratio)
			}
		}
		if leave < 0 {
			return nil, true
		}
		t.pivot(leave, enter, cost, z)
	}
}

func (t *tableau) pivot(leave, enter int, cost []*big.Rat, z *big.Rat) {
	t.pivots++
	rowL := t.a[leave]
	inv := new(big.Rat).Inv(rowL[enter])
	for j := 0; j < t.n; j++ {
		if rowL[j].Sign() != 0 {
			rowL[j].Mul(rowL[j], inv)
		}
	}
	t.rhs[leave].Mul(t.rhs[leave], inv)
	rowL[enter].SetInt64(1)

	tmp := new(big.Rat)
	for r := 0; r < t.m; r++ {
		if r == leave || t.a[r][enter].Sign() == 0 {
			continue
		}
		f := new(big.Rat).Set(t.a[r][enter])
		row := t.a[r]
		for j := 0; j < t.n; j++ {
			if rowL[j].Sign() != 0 {
				tmp.Mul(f, rowL[j])
				row[j].Sub(row[j], tmp)
			}
		}
		row[enter].SetInt64(0)
		tmp.Mul(f, t.rhs[leave])
		t.rhs[r].Sub(t.rhs[r], tmp)
	}
	if cost[enter].Sign() != 0 {
		f := new(big.Rat).Set(cost[enter])
		for j := 0; j < t.n; j++ {
			if rowL[j].Sign() != 0 {
				tmp.Mul(f, rowL[j])
				cost[j].Sub(cost[j], tmp)
			}
		}
		cost[enter].SetInt64(0)
		tmp.Mul(f, t.rhs[leave])
		z.Sub(z, tmp)
	}
	t.basis[leave] = enter
}

func (t *tableau) driveOutArtificials(artStart int) {
	for r := 0; r < t.m; r++ {
		if t.basis[r] < artStart {
			continue
		}
		pivCol := -1
		for j := 0; j < artStart; j++ {
			if t.a[r][j].Sign() != 0 {
				pivCol = j
				break
			}
		}
		if pivCol < 0 {
			for j := 0; j < t.n; j++ {
				t.a[r][j].SetInt64(0)
			}
			t.a[r][t.basis[r]].SetInt64(1)
			t.rhs[r].SetInt64(0)
			continue
		}
		dummy := make([]*big.Rat, t.n)
		for j := range dummy {
			dummy[j] = new(big.Rat)
		}
		t.pivot(r, pivCol, dummy, new(big.Rat))
	}
}
