package ratsimplex

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/simplex"
)

func rat(n, d int64) *big.Rat { return big.NewRat(n, d) }

func TestSimpleLP(t *testing.T) {
	// min -x0 - 2x1 s.t. x0 + x1 <= 4, x1 <= 3. Optimum (1,3): -7.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, rat(-1, 1))
	p.SetObjectiveCoef(1, rat(-2, 1))
	p.Add([]Term{T(0, 1, 1), T(1, 1, 1)}, LE, rat(4, 1))
	p.Add([]Term{T(1, 1, 1)}, LE, rat(3, 1))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective.Cmp(rat(-7, 1)) != 0 {
		t.Fatalf("objective %v want -7", sol.Objective)
	}
	if sol.X[0].Cmp(rat(1, 1)) != 0 || sol.X[1].Cmp(rat(3, 1)) != 0 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestExactFractions(t *testing.T) {
	// min x0 s.t. 3x0 >= 1 — exact answer 1/3, not 0.333….
	p := NewProblem(1)
	p.SetObjectiveCoef(0, rat(1, 1))
	p.Add([]Term{T(0, 3, 1)}, GE, rat(1, 1))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective.Cmp(rat(1, 3)) != 0 {
		t.Fatalf("objective %v want exactly 1/3", sol.Objective)
	}
}

func TestInfeasibleAndUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.Add([]Term{T(0, 1, 1)}, GE, rat(5, 1))
	p.Add([]Term{T(0, 1, 1)}, LE, rat(3, 1))
	if _, err := p.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v want ErrInfeasible", err)
	}

	q := NewProblem(1)
	q.SetObjectiveCoef(0, rat(-1, 1))
	if _, err := q.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v want ErrUnbounded", err)
	}
}

func TestEquality(t *testing.T) {
	p := NewProblem(2)
	p.SetObjectiveCoef(0, rat(1, 1))
	p.SetObjectiveCoef(1, rat(1, 1))
	p.Add([]Term{T(0, 1, 1), T(1, 2, 1)}, EQ, rat(4, 1))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("objective %v want 2", sol.Objective)
	}
}

func TestNegativeRHS(t *testing.T) {
	p := NewProblem(1)
	p.SetObjectiveCoef(0, rat(1, 1))
	p.Add([]Term{T(0, -1, 1)}, LE, rat(-3, 1))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective.Cmp(rat(3, 1)) != 0 {
		t.Fatalf("objective %v want 3", sol.Objective)
	}
}

// TestAgainstFloatSimplex cross-checks the exact solver against the
// float64 solver on random LPs (bounded so neither is unbounded).
func TestAgainstFloatSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 150; trial++ {
		nv := 2 + rng.Intn(2)
		nr := 1 + rng.Intn(4)
		fp := simplex.NewProblem(nv)
		rp := NewProblem(nv)
		for v := 0; v < nv; v++ {
			c := int64(rng.Intn(9) - 4)
			fp.SetObjectiveCoef(v, float64(c))
			rp.SetObjectiveCoef(v, rat(c, 1))
			// Bounding box.
			fp.Add([]simplex.Term{{Var: v, Coef: 1}}, simplex.LE, 10)
			rp.Add([]Term{T(v, 1, 1)}, LE, rat(10, 1))
		}
		for k := 0; k < nr; k++ {
			fterms := make([]simplex.Term, nv)
			rterms := make([]Term, nv)
			for v := 0; v < nv; v++ {
				a := int64(rng.Intn(7) - 2)
				fterms[v] = simplex.Term{Var: v, Coef: float64(a)}
				rterms[v] = T(v, a, 1)
			}
			rhs := int64(rng.Intn(12))
			op := []simplex.Op{simplex.LE, simplex.GE, simplex.EQ}[rng.Intn(3)]
			rop := []Op{LE, GE, EQ}[int(op)]
			fp.Add(fterms, op, float64(rhs))
			rp.Add(rterms, rop, rat(rhs, 1))
		}
		fsol, ferr := fp.Solve()
		rsol, rerr := rp.Solve()
		if (ferr == nil) != (rerr == nil) {
			t.Fatalf("trial %d: float err %v, rational err %v", trial, ferr, rerr)
		}
		if ferr != nil {
			continue
		}
		exact, _ := rsol.Objective.Float64()
		if diff := fsol.Objective - exact; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("trial %d: float %g vs exact %g", trial, fsol.Objective, exact)
		}
	}
}

func TestVarOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := NewProblem(1)
	p.Add([]Term{T(5, 1, 1)}, LE, rat(1, 1))
}
