package ratsimplex

import (
	"errors"
	"math"
	"math/big"
	"testing"

	"repro/internal/simplex"
)

// decodeLP turns fuzz bytes into a pair of identical small LPs, one for
// the float64 solver and one for the exact big.Rat solver. Layout:
// data[0] → nvars (1..3), data[1] → ncons (1..4), then per variable one
// objective byte, then per constraint nvars coefficient bytes, one
// sense byte and one rhs byte. All coefficients are small integers in
// [-3,3] and rhs in [-4,7], so every pivot stays exactly representable
// in float64 and the two solvers must classify identically.
func decodeLP(data []byte) (*simplex.Problem, *Problem, bool) {
	at := 0
	next := func() byte {
		if at >= len(data) {
			return 0
		}
		b := data[at]
		at++
		return b
	}
	nvars := 1 + int(next()%3)
	ncons := 1 + int(next()%4)
	need := 2 + nvars + ncons*(nvars+2)
	if len(data) < need {
		return nil, nil, false
	}
	fp := simplex.NewProblem(nvars)
	rp := NewProblem(nvars)
	for v := 0; v < nvars; v++ {
		c := int64(next()%7) - 3
		fp.SetObjectiveCoef(v, float64(c))
		rp.SetObjectiveCoef(v, big.NewRat(c, 1))
	}
	for k := 0; k < ncons; k++ {
		var ft []simplex.Term
		var rt []Term
		for v := 0; v < nvars; v++ {
			c := int64(next()%7) - 3
			if c == 0 {
				continue
			}
			ft = append(ft, simplex.Term{Var: v, Coef: float64(c)})
			rt = append(rt, T(v, c, 1))
		}
		op := next() % 3
		rhs := int64(next()%12) - 4
		fp.Add(ft, simplex.Op(op), float64(rhs))
		rp.Add(rt, Op(op), big.NewRat(rhs, 1))
	}
	return fp, rp, true
}

// FuzzSimplexVsRatsimplex cross-checks the float64 two-phase simplex
// against the exact rational simplex on random small LPs: the outcome
// classification (optimal / infeasible / unbounded) must match, and
// optimal objective values must agree within floating-point tolerance.
func FuzzSimplexVsRatsimplex(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 0, 3})
	f.Add([]byte{1, 1, 3, 2, 1, 1, 0, 4, 1, 2, 1, 3})
	f.Add([]byte{2, 2, 0, 0, 0, 1, 2, 3, 1, 9, 3, 2, 1, 0, 5})
	f.Add([]byte{0, 3, 1, 2, 1, 6, 3, 0, 0, 2, 2, 2, 4, 1, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		fp, rp, ok := decodeLP(data)
		if !ok {
			t.Skip()
		}
		fsol, ferr := fp.Solve()
		if errors.Is(ferr, simplex.ErrIterLimit) {
			t.Skip() // anti-cycling gave up; no exact counterpart
		}
		rsol, rerr := rp.Solve()
		switch {
		case rerr == nil:
			if ferr != nil {
				t.Fatalf("exact optimal %v but float solver says %v (input %v)",
					rsol.Objective, ferr, data)
			}
			exact, _ := rsol.Objective.Float64()
			if diff := math.Abs(fsol.Objective - exact); diff > 1e-6*(1+math.Abs(exact)) {
				t.Fatalf("objective mismatch: float %v vs exact %v (Δ=%g, input %v)",
					fsol.Objective, rsol.Objective, diff, data)
			}
		case errors.Is(rerr, ErrInfeasible):
			if !errors.Is(ferr, simplex.ErrInfeasible) {
				t.Fatalf("exact infeasible but float solver returned (%+v, %v) (input %v)",
					fsol, ferr, data)
			}
		case errors.Is(rerr, ErrUnbounded):
			if !errors.Is(ferr, simplex.ErrUnbounded) {
				t.Fatalf("exact unbounded but float solver returned (%+v, %v) (input %v)",
					fsol, ferr, data)
			}
		default:
			t.Fatalf("unexpected exact-solver error %v (input %v)", rerr, data)
		}
	})
}
