// Package multi implements the multi-interval generalization of
// active-time scheduling discussed in the paper's related work
// (Chang, Gabow, Khuller): each job may be scheduled inside any of a
// collection of disjoint windows rather than a single one. The
// problem is NP-hard already for g ≥ 3 and unit jobs, but admits an
// H_g-approximation through Wolsey's greedy algorithm for submodular
// cover, which this package provides alongside flow-based feasibility
// and an exact branch-and-bound for ground truth.
package multi

import (
	"fmt"
	"sort"

	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/maxflow"
	"repro/internal/sched"
)

// Job is a preemptible job that may run in any of its windows.
type Job struct {
	// ID is the job's dense index.
	ID int
	// Processing is the number of slots the job needs.
	Processing int64
	// Windows are pairwise disjoint half-open intervals; the job may
	// use any slot inside any of them.
	Windows []interval.Interval
}

// allowed reports whether slot t is usable by the job.
func (j Job) allowed(t int64) bool {
	for _, w := range j.Windows {
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// windowLen returns the total number of usable slots.
func (j Job) windowLen() int64 {
	var s int64
	for _, w := range j.Windows {
		s += w.Len()
	}
	return s
}

// Instance is a multi-interval active-time instance.
type Instance struct {
	G    int64
	Jobs []Job
}

// New builds and validates an instance; job IDs are assigned densely.
func New(g int64, jobs []Job) (*Instance, error) {
	in := &Instance{G: g, Jobs: make([]Job, len(jobs))}
	copy(in.Jobs, jobs)
	for i := range in.Jobs {
		in.Jobs[i].ID = i
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// Validate checks g ≥ 1 and, per job: p ≥ 1, at least one window,
// windows non-empty, sorted, and pairwise disjoint, with total length
// at least p.
func (in *Instance) Validate() error {
	if in.G < 1 {
		return fmt.Errorf("multi: g=%d < 1", in.G)
	}
	for i, j := range in.Jobs {
		if j.ID != i {
			return fmt.Errorf("multi: job at index %d has ID %d", i, j.ID)
		}
		if j.Processing < 1 {
			return fmt.Errorf("multi: job %d processing %d < 1", i, j.Processing)
		}
		if len(j.Windows) == 0 {
			return fmt.Errorf("multi: job %d has no windows", i)
		}
		for k, w := range j.Windows {
			if w.Empty() {
				return fmt.Errorf("multi: job %d window %d empty", i, k)
			}
			if k > 0 && j.Windows[k-1].End > w.Start {
				return fmt.Errorf("multi: job %d windows unsorted or overlapping at %d", i, k)
			}
		}
		if j.windowLen() < j.Processing {
			return fmt.Errorf("multi: job %d windows hold %d < p=%d", i, j.windowLen(), j.Processing)
		}
	}
	return nil
}

// N returns the number of jobs.
func (in *Instance) N() int { return len(in.Jobs) }

// TotalProcessing returns Σ p_j.
func (in *Instance) TotalProcessing() int64 {
	var s int64
	for _, j := range in.Jobs {
		s += j.Processing
	}
	return s
}

// SortedSlots returns every slot covered by some window, sorted.
func (in *Instance) SortedSlots() []int64 {
	seen := map[int64]bool{}
	for _, j := range in.Jobs {
		for _, w := range j.Windows {
			for t := w.Start; t < w.End; t++ {
				seen[t] = true
			}
		}
	}
	out := make([]int64, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// FromSingle lifts an ordinary single-window instance.
func FromSingle(in *instance.Instance) *Instance {
	jobs := make([]Job, in.N())
	for i, j := range in.Jobs {
		jobs[i] = Job{ID: i, Processing: j.Processing, Windows: []interval.Interval{j.Window()}}
	}
	return &Instance{G: in.G, Jobs: jobs}
}

// Coverage returns f(open): the maximum total volume schedulable
// using the open slots — the monotone submodular function Wolsey's
// greedy covers. Feasibility is f(open) == TotalProcessing().
func (in *Instance) Coverage(open []int64) int64 {
	flow, _ := in.runFlow(open)
	return flow
}

// CheckSlots reports whether the open slots schedule everything.
func (in *Instance) CheckSlots(open []int64) bool {
	return in.Coverage(open) == in.TotalProcessing()
}

// ScheduleOnSlots extracts a concrete schedule on the open slots.
func (in *Instance) ScheduleOnSlots(open []int64) (*sched.Schedule, error) {
	flow, net := in.runFlow(open)
	if flow != in.TotalProcessing() {
		return nil, fmt.Errorf("multi: slot set infeasible")
	}
	out := sched.New(in.G)
	for jID, edges := range net.jobSlotEdges {
		for k, ref := range edges {
			if net.g.Flow(ref) > 0 {
				out.Assign(net.jobSlots[jID][k], jID)
			}
		}
	}
	return out, nil
}

type flowNet struct {
	g            *maxflow.Graph
	jobSlotEdges [][]maxflow.EdgeRef
	jobSlots     [][]int64
}

func (in *Instance) runFlow(open []int64) (int64, *flowNet) {
	slots := dedupSorted(open)
	n := in.N()
	g := maxflow.New(2 + n + len(slots))
	src, snk := 0, 1
	slotNode := make(map[int64]int, len(slots))
	for k, t := range slots {
		slotNode[t] = 2 + n + k
		g.AddEdge(2+n+k, snk, in.G)
	}
	net := &flowNet{
		g:            g,
		jobSlotEdges: make([][]maxflow.EdgeRef, n),
		jobSlots:     make([][]int64, n),
	}
	for _, j := range in.Jobs {
		jn := 2 + j.ID
		g.AddEdge(src, jn, j.Processing)
		for _, t := range slots {
			if j.allowed(t) {
				ref := g.AddEdge(jn, slotNode[t], 1)
				net.jobSlotEdges[j.ID] = append(net.jobSlotEdges[j.ID], ref)
				net.jobSlots[j.ID] = append(net.jobSlots[j.ID], t)
			}
		}
	}
	return g.Run(src, snk), net
}

func dedupSorted(open []int64) []int64 {
	out := make([]int64, len(open))
	copy(out, open)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// HarmonicG returns H_g = 1 + 1/2 + … + 1/g, the approximation factor
// of GreedyCover (Wolsey's bound: marginal coverage gains are at most
// g per slot).
func HarmonicG(g int64) float64 {
	var h float64
	for i := int64(1); i <= g; i++ {
		h += 1 / float64(i)
	}
	return h
}

// GreedyCover is Wolsey's greedy for submodular cover applied to the
// coverage function: repeatedly open the slot with the largest
// marginal coverage gain (smallest slot index on ties) until all
// volume is covered. The result is an H_g-approximation of the
// minimum number of active slots. It returns the chosen slots.
func (in *Instance) GreedyCover() ([]int64, error) {
	all := in.SortedSlots()
	want := in.TotalProcessing()
	if in.Coverage(all) != want {
		return nil, fmt.Errorf("multi: instance infeasible even with all slots open")
	}
	var open []int64
	covered := int64(0)
	remaining := append([]int64(nil), all...)
	for covered < want {
		bestIdx, bestGain := -1, int64(0)
		for k, t := range remaining {
			gain := in.Coverage(append(open, t)) - covered
			if gain > bestGain {
				bestGain = gain
				bestIdx = k
			}
			if bestGain == in.G {
				break // a marginal gain can never exceed g
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("multi: internal: no slot improves coverage at %d/%d", covered, want)
		}
		open = append(open, remaining[bestIdx])
		covered += bestGain
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	sort.Slice(open, func(a, b int) bool { return open[a] < open[b] })
	return open, nil
}

// SolveExact computes the optimum by branch and bound over slot
// subsets (close-first, flow-pruned), mirroring exact.SolveGeneral.
// Intended for small horizons.
func (in *Instance) SolveExact() (int64, []int64, error) {
	slots := in.SortedSlots()
	if !in.CheckSlots(slots) {
		return 0, nil, fmt.Errorf("multi: instance infeasible even with all slots open")
	}
	lb := (in.TotalProcessing() + in.G - 1) / in.G
	for _, j := range in.Jobs {
		if j.Processing > lb {
			lb = j.Processing
		}
	}
	s := &search{in: in, slots: slots, lb: lb}
	s.open = make([]bool, len(slots))
	for i := range s.open {
		s.open[i] = true
	}
	s.best = append([]bool(nil), s.open...)
	s.bestSum = int64(len(slots))
	s.dfs(0, 0)
	var out []int64
	for i, b := range s.best {
		if b {
			out = append(out, slots[i])
		}
	}
	return s.bestSum, out, nil
}

type search struct {
	in      *Instance
	slots   []int64
	open    []bool
	best    []bool
	bestSum int64
	lb      int64
}

func (s *search) dfs(k int, opened int64) {
	if s.bestSum == s.lb || opened >= s.bestSum {
		return
	}
	if k == len(s.slots) {
		s.bestSum = opened
		copy(s.best, s.open)
		return
	}
	s.open[k] = false
	var rest []int64
	for i, b := range s.open {
		if b {
			rest = append(rest, s.slots[i])
		}
	}
	if s.in.CheckSlots(rest) {
		s.dfs(k+1, opened)
	}
	s.open[k] = true
	s.dfs(k+1, opened+1)
}
