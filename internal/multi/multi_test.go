package multi

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/instance"
	"repro/internal/interval"
)

func mk(t *testing.T, g int64, jobs ...Job) *Instance {
	t.Helper()
	in, err := New(g, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestValidate(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Fatal("g=0 must be rejected")
	}
	if _, err := New(1, []Job{{Processing: 1}}); err == nil {
		t.Fatal("no windows must be rejected")
	}
	if _, err := New(1, []Job{{Processing: 1, Windows: []interval.Interval{
		interval.New(0, 3), interval.New(2, 5),
	}}}); err == nil {
		t.Fatal("overlapping windows must be rejected")
	}
	if _, err := New(1, []Job{{Processing: 5, Windows: []interval.Interval{
		interval.New(0, 2), interval.New(4, 6),
	}}}); err == nil {
		t.Fatal("p exceeding total window length must be rejected")
	}
	in := mk(t, 2, Job{Processing: 3, Windows: []interval.Interval{
		interval.New(0, 2), interval.New(4, 6),
	}})
	if in.TotalProcessing() != 3 {
		t.Fatal("total processing")
	}
	slots := in.SortedSlots()
	want := []int64{0, 1, 4, 5}
	for i := range want {
		if slots[i] != want[i] {
			t.Fatalf("slots %v", slots)
		}
	}
}

func TestCoverageAndCheck(t *testing.T) {
	in := mk(t, 1,
		Job{Processing: 2, Windows: []interval.Interval{interval.New(0, 2), interval.New(5, 7)}},
		Job{Processing: 1, Windows: []interval.Interval{interval.New(5, 7)}},
	)
	// g=1: two open slots can host at most 2 units in total.
	if got := in.Coverage([]int64{0, 5}); got != 2 {
		t.Fatalf("coverage {0,5} = %d want 2", got)
	}
	if got := in.Coverage([]int64{0, 1}); got != 2 {
		t.Fatalf("coverage {0,1} = %d want 2", got)
	}
	if !in.CheckSlots([]int64{0, 5, 6}) {
		t.Fatal("{0,5,6} should be feasible")
	}
	if in.CheckSlots([]int64{0, 1}) {
		t.Fatal("{0,1} cannot host job 1")
	}
	// Slot 3 is in no window: zero marginal gain.
	if in.Coverage([]int64{3}) != 0 {
		t.Fatal("slot outside all windows must not cover anything")
	}
}

func TestScheduleOnSlots(t *testing.T) {
	in := mk(t, 2,
		Job{Processing: 2, Windows: []interval.Interval{interval.New(0, 2), interval.New(5, 7)}},
		Job{Processing: 2, Windows: []interval.Interval{interval.New(0, 7)}},
	)
	s, err := in.ScheduleOnSlots([]int64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Both jobs squeezed into slots 0,1 at g=2.
	if s.NumActive() != 2 {
		t.Fatalf("active %d", s.NumActive())
	}
	counts := map[int]int64{}
	for tSlot, js := range s.Slots {
		seen := map[int]bool{}
		if int64(len(js)) > in.G {
			t.Fatalf("slot %d over capacity", tSlot)
		}
		for _, id := range js {
			if seen[id] {
				t.Fatalf("dup job %d in slot %d", id, tSlot)
			}
			seen[id] = true
			if !in.Jobs[id].allowed(tSlot) {
				t.Fatalf("job %d scheduled outside windows at %d", id, tSlot)
			}
			counts[id]++
		}
	}
	for _, j := range in.Jobs {
		if counts[j.ID] != j.Processing {
			t.Fatalf("job %d units %d want %d", j.ID, counts[j.ID], j.Processing)
		}
	}
	if _, err := in.ScheduleOnSlots([]int64{0}); err == nil {
		t.Fatal("one slot cannot host volume 4")
	}
}

func TestGreedyCoverSimple(t *testing.T) {
	// Two jobs sharing a slot beats spreading out: greedy should find
	// the single shared slot first.
	in := mk(t, 2,
		Job{Processing: 1, Windows: []interval.Interval{interval.New(0, 2)}},
		Job{Processing: 1, Windows: []interval.Interval{interval.New(1, 3)}},
	)
	open, err := in.GreedyCover()
	if err != nil {
		t.Fatal(err)
	}
	if len(open) != 1 || open[0] != 1 {
		t.Fatalf("greedy chose %v, want {1}", open)
	}
}

func TestGreedyCoverInfeasible(t *testing.T) {
	in := mk(t, 1,
		Job{Processing: 1, Windows: []interval.Interval{interval.New(0, 1)}},
		Job{Processing: 1, Windows: []interval.Interval{interval.New(0, 1)}},
	)
	if _, err := in.GreedyCover(); err == nil {
		t.Fatal("expected infeasibility error")
	}
	if _, _, err := in.SolveExact(); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

// TestGreedyWithinHg: Wolsey's bound |greedy| ≤ H_g·OPT on random
// multi-interval instances, with exact OPT from branch and bound.
func TestGreedyWithinHg(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		in := randomMulti(rng)
		open, err := in.GreedyCover()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !in.CheckSlots(open) {
			t.Fatalf("trial %d: greedy result infeasible", trial)
		}
		opt, optSlots, err := in.SolveExact()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !in.CheckSlots(optSlots) {
			t.Fatalf("trial %d: exact slots infeasible", trial)
		}
		hg := HarmonicG(in.G)
		if float64(len(open)) > hg*float64(opt)+1e-9 {
			t.Fatalf("trial %d: greedy %d > H_%d × OPT %d = %g",
				trial, len(open), in.G, opt, hg*float64(opt))
		}
	}
}

// TestSingleWindowAgreesWithExactPackage: lifting a single-window
// instance must give the same optimum as the exact package.
func TestSingleWindowAgreesWithExactPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 40; trial++ {
		single := gen.RandomLaminar(rng, gen.DefaultLaminar(6, 2))
		lifted := FromSingle(single)
		if err := lifted.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		mOpt, _, err := lifted.SolveExact()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sOpt, err := exact.Opt(single)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if mOpt != sOpt {
			t.Fatalf("trial %d: multi OPT %d vs single OPT %d", trial, mOpt, sOpt)
		}
	}
}

func TestHarmonicG(t *testing.T) {
	if HarmonicG(1) != 1 {
		t.Fatal("H_1")
	}
	if math.Abs(HarmonicG(2)-1.5) > 1e-12 {
		t.Fatal("H_2")
	}
	if math.Abs(HarmonicG(4)-(1+0.5+1.0/3+0.25)) > 1e-12 {
		t.Fatal("H_4")
	}
}

// TestCoverageSubmodularity property-checks the submodularity of the
// coverage function (the premise of the H_g analysis): for random
// S ⊆ T and slot t ∉ T, gain(S, t) ≥ gain(T, t).
func TestCoverageSubmodularity(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 200; trial++ {
		in := randomMulti(rng)
		slots := in.SortedSlots()
		if len(slots) < 2 {
			continue
		}
		var small, big []int64
		for _, s := range slots {
			r := rng.Intn(3)
			if r == 0 {
				small = append(small, s)
				big = append(big, s)
			} else if r == 1 {
				big = append(big, s)
			}
		}
		var t0 int64 = -1
		inBig := map[int64]bool{}
		for _, s := range big {
			inBig[s] = true
		}
		for _, s := range slots {
			if !inBig[s] {
				t0 = s
				break
			}
		}
		if t0 < 0 {
			continue
		}
		gainSmall := in.Coverage(append(small, t0)) - in.Coverage(small)
		gainBig := in.Coverage(append(big, t0)) - in.Coverage(big)
		if gainSmall < gainBig {
			t.Fatalf("trial %d: submodularity violated: gain(S)=%d < gain(T)=%d",
				trial, gainSmall, gainBig)
		}
	}
}

func randomMulti(rng *rand.Rand) *Instance {
	for {
		n := 1 + rng.Intn(4)
		jobs := make([]Job, n)
		horizon := int64(10)
		for i := range jobs {
			// 1-2 disjoint windows.
			nw := 1 + rng.Intn(2)
			var ws []interval.Interval
			cur := rng.Int63n(3)
			for k := 0; k < nw && cur < horizon-1; k++ {
				length := 1 + rng.Int63n(3)
				if cur+length > horizon {
					length = horizon - cur
				}
				ws = append(ws, interval.New(cur, cur+length))
				cur += length + 1 + rng.Int63n(2)
			}
			total := int64(0)
			for _, w := range ws {
				total += w.Len()
			}
			jobs[i] = Job{Processing: 1 + rng.Int63n(total), Windows: ws}
		}
		in, err := New(int64(1+rng.Intn(3)), jobs)
		if err != nil {
			continue
		}
		if in.CheckSlots(in.SortedSlots()) {
			return in
		}
	}
}

var _ = instance.Job{} // keep the import used if FromSingle moves
