package multi

import (
	"math/rand"
	"testing"

	"repro/internal/interval"
)

// TestGreedyDeterministic: same instance, same greedy slots.
func TestGreedyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		in := randomMulti(rng)
		a, err := in.GreedyCover()
		if err != nil {
			t.Fatal(err)
		}
		b, err := in.GreedyCover()
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("trial %d: %v vs %v", trial, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: %v vs %v", trial, a, b)
			}
		}
	}
}

// TestCoverageMonotone: adding slots never decreases coverage.
func TestCoverageMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 100; trial++ {
		in := randomMulti(rng)
		slots := in.SortedSlots()
		var sub []int64
		for _, s := range slots {
			if rng.Intn(2) == 0 {
				sub = append(sub, s)
			}
		}
		base := in.Coverage(sub)
		for _, s := range slots {
			if in.Coverage(append(sub, s)) < base {
				t.Fatalf("trial %d: adding slot %d decreased coverage", trial, s)
			}
		}
	}
}

// TestGreedyGainsNonIncreasing: Wolsey greedy's marginal gains are
// non-increasing over its run — a consequence of the coverage
// function's submodularity and greedy's max-gain choice.
func TestGreedyGainsNonIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 40; trial++ {
		in := randomMulti(rng)
		open, err := in.GreedyCover()
		if err != nil {
			t.Fatal(err)
		}
		_ = open
		// Re-simulate gains by replaying prefixes of the greedy's
		// choice order is not exposed; instead check total coverage at
		// each prefix of the returned (sorted) slots is monotone.
		var prefix []int64
		prev := int64(0)
		for _, s := range open {
			prefix = append(prefix, s)
			cur := in.Coverage(prefix)
			if cur < prev {
				t.Fatalf("trial %d: coverage decreased along prefix", trial)
			}
			prev = cur
		}
		if prev != in.TotalProcessing() {
			t.Fatalf("trial %d: greedy slots do not cover everything", trial)
		}
	}
}

func TestFromSingleDegenerate(t *testing.T) {
	// Single-window multi instance with exact window length == p.
	in := mk(t, 1, Job{Processing: 3, Windows: []interval.Interval{interval.New(2, 5)}})
	open, err := in.GreedyCover()
	if err != nil {
		t.Fatal(err)
	}
	if len(open) != 3 {
		t.Fatalf("greedy %v, want all 3 slots", open)
	}
	opt, _, err := in.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	if opt != 3 {
		t.Fatalf("OPT %d", opt)
	}
}
