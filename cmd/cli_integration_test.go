// Package cmd_test builds the three CLI binaries and exercises them
// end to end: generate → solve → compare → export, checking exit codes
// and key output lines.
package cmd_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles ./cmd/<name> into dir and returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./"+name)
	cmd.Dir = mustCmdDir(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// mustCmdDir returns the cmd/ directory this test file lives in.
func mustCmdDir(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	return buf.String(), err
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	atgen := buildTool(t, dir, "atgen")
	activetime := buildTool(t, dir, "activetime")

	// Generate an instance.
	instPath := filepath.Join(dir, "inst.json")
	out, err := run(t, atgen, "-kind", "laminar", "-n", "8", "-g", "2", "-seed", "11")
	if err != nil {
		t.Fatalf("atgen: %v\n%s", err, out)
	}
	if err := os.WriteFile(instPath, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}

	// Solve with default algorithm.
	out, err = run(t, activetime, "-in", instPath, "-metrics")
	if err != nil {
		t.Fatalf("activetime: %v\n%s", err, out)
	}
	for _, want := range []string{"algorithm:", "active slots:", "LP bound:", "metrics:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}

	// Cross-check mode must succeed with no violations.
	out, err = run(t, activetime, "-in", instPath, "-compare")
	if err != nil {
		t.Fatalf("compare: %v\n%s", err, out)
	}
	if strings.Contains(out, "VIOLATION") {
		t.Fatalf("compare found violations:\n%s", out)
	}

	// Export a schedule and reload it.
	schedPath := filepath.Join(dir, "sched.json")
	if out, err = run(t, activetime, "-in", instPath, "-minimize", "-out", schedPath); err != nil {
		t.Fatalf("export: %v\n%s", err, out)
	}
	data, err := os.ReadFile(schedPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"slots\"") {
		t.Fatalf("schedule JSON malformed:\n%s", data)
	}

	// Family generation works and solves exactly.
	out, err = run(t, atgen, "-kind", "family", "-family", "nested32", "-g", "4")
	if err != nil {
		t.Fatalf("atgen family: %v\n%s", err, out)
	}
	famPath := filepath.Join(dir, "fam.json")
	if err := os.WriteFile(famPath, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = run(t, activetime, "-in", famPath, "-alg", "exact")
	if err != nil {
		t.Fatalf("exact solve: %v\n%s", err, out)
	}
	if !strings.Contains(out, "active slots: 6") { // 3g/2 with g=4
		t.Fatalf("Nested32(4) exact should be 6 slots:\n%s", out)
	}

	// Missing -in flag exits non-zero.
	if _, err = run(t, activetime); err == nil {
		t.Fatal("missing -in must fail")
	}
	// Unknown algorithm exits non-zero.
	if _, err = run(t, activetime, "-in", instPath, "-alg", "bogus"); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
}

func TestAtexpQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	atexp := buildTool(t, dir, "atexp")
	out, err := run(t, atexp, "-quick", "-only", "E2,E10")
	if err != nil {
		t.Fatalf("atexp: %v\n%s", err, out)
	}
	for _, want := range []string{"== E2:", "== E10:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "== E1:") {
		t.Fatal("-only filter leaked other experiments")
	}
	// CSV mode.
	out, err = run(t, atexp, "-quick", "-csv", "-only", "E2")
	if err != nil {
		t.Fatalf("atexp csv: %v\n%s", err, out)
	}
	if !strings.Contains(out, "# E2:") || !strings.Contains(out, "g,natural LP") {
		t.Fatalf("CSV output malformed:\n%s", out)
	}
}
