package main

import (
	"context"
	"strings"
	"testing"

	"repro/internal/loadgen"
)

// fleetArgs is a permuted hot-pool plan over a 3-replica fleet: 60
// requests drawn from 4 distinct instances, every body a fresh job
// order. Concurrency 1 keeps cache outcomes deterministic (no
// in-flight coalescing), so hit/miss counts are exact.
func fleetArgs(policy string, extra ...string) []string {
	args := []string{
		"-requests", "60", "-concurrency", "1", "-seed", "11",
		"-jobs-min", "4", "-jobs-max", "10", "-distinct", "4",
		"-permute", "-fleet", "3", "-route-policy", policy,
	}
	return append(args, extra...)
}

// TestCLIFleetAffinityBeatsRoundRobin is the E23 mechanism in
// miniature: same seed, same permuted plan, 3 replicas — affinity
// routing misses once per distinct instance fleet-wide, round-robin
// misses once per (instance, replica) pair, so affinity's aggregate
// cache hit rate is strictly higher.
func TestCLIFleetAffinityBeatsRoundRobin(t *testing.T) {
	code, affinity, errOut := runCLI(t, fleetArgs("affinity")...)
	if code != 0 {
		t.Fatalf("affinity run exit %d: %s", code, errOut)
	}
	code, roundRobin, errOut := runCLI(t, fleetArgs("round-robin")...)
	if code != 0 {
		t.Fatalf("round-robin run exit %d: %s", code, errOut)
	}

	fa, frr := affinity.Fleet, roundRobin.Fleet
	if fa == nil || frr == nil {
		t.Fatal("fleet block missing from a -fleet report")
	}
	if fa.Policy != "affinity" || frr.Policy != "round-robin" {
		t.Fatalf("policies recorded as %q / %q", fa.Policy, frr.Policy)
	}
	if len(fa.Replicas) != 3 || len(frr.Replicas) != 3 {
		t.Fatalf("replica counts %d / %d, want 3", len(fa.Replicas), len(frr.Replicas))
	}

	// Affinity: one cold miss per distinct instance, fleet-wide.
	if fa.CacheMisses != 4 {
		t.Errorf("affinity fleet misses = %d, want 4 (one per distinct instance)", fa.CacheMisses)
	}
	// Round-robin replicates the working set: every replica that sees an
	// instance takes its own cold miss, so strictly more than 4.
	if frr.CacheMisses <= fa.CacheMisses {
		t.Errorf("round-robin misses = %d, not above affinity's %d", frr.CacheMisses, fa.CacheMisses)
	}
	if fa.CacheHitRate <= frr.CacheHitRate {
		t.Errorf("affinity hit rate %.3f not strictly above round-robin %.3f",
			fa.CacheHitRate, frr.CacheHitRate)
	}

	var routed int64
	for _, rep := range fa.Replicas {
		if !rep.Healthy {
			t.Errorf("replica %s unhealthy in a local fleet", rep.Name)
		}
		routed += rep.Routed
	}
	if routed != 60 {
		t.Errorf("routed %d requests across the fleet, want 60", routed)
	}
	if fa.SuccessRatio != 1 || frr.SuccessRatio != 1 {
		t.Errorf("fleet success ratios %.3f / %.3f, want 1", fa.SuccessRatio, frr.SuccessRatio)
	}
	if !strings.Contains(errOut, "fleet policy=round-robin") {
		t.Errorf("stderr missing fleet summary line:\n%s", errOut)
	}
}

// TestCLIFleetCrossCheck: the wide-event cross-check holds through the
// proxy — all replicas share one JSONL sink, the router assigns the
// request ids, and every client result reconciles 1:1.
func TestCLIFleetCrossCheck(t *testing.T) {
	events := t.TempDir() + "/fleet-events.jsonl"
	code, rep, errOut := runCLI(t, fleetArgs("affinity", "-events-file", events)...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	cc := rep.CrossCheck
	if cc == nil || !cc.Pass {
		t.Fatalf("cross-check failed through the proxy: %+v\n%s", cc, errOut)
	}
	if cc.Matched != 60 {
		t.Errorf("matched %d events, want 60", cc.Matched)
	}
}

// TestCLIFleetAsync: the job API works through the router — sticky
// polls reach the admitting replica and every job terminates.
func TestCLIFleetAsync(t *testing.T) {
	code, rep, errOut := runCLI(t, fleetArgs("least-loaded", "-async", "-queue-running", "2")...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	done := rep.Counts[loadgen.ClassOK] + rep.Counts[loadgen.ClassCached]
	if done != 60 {
		t.Fatalf("async fleet run completed %d/60 (counts %v)", done, rep.Counts)
	}
	if rep.Fleet == nil || rep.Fleet.Policy != "least-loaded" {
		t.Fatalf("fleet block: %+v", rep.Fleet)
	}
}

// TestCLIFleetUsageErrors: fleet mode is in-process only.
func TestCLIFleetUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-fleet", "2", "-target", "http://127.0.0.1:1"},
		{"-fleet", "-1"},
		{"-fleet", "2", "-route-policy", "bogus"},
	} {
		var stderr strings.Builder
		o, err := parseFlags(args, &stderr)
		if err != nil {
			continue // rejected at flag parsing: fine
		}
		var out strings.Builder
		if code := run(context.Background(), o, &out, &stderr); code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr %s)", args, code, stderr.String())
		}
	}
}
