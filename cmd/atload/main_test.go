package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/loadgen"
)

// runCLI parses args and executes the run, returning the exit code,
// the report JSON written to stdout, and stderr.
func runCLI(t *testing.T, args ...string) (int, *loadgen.Report, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	o, err := parseFlags(args, &stderr)
	if err != nil {
		t.Fatalf("parseFlags(%v): %v", args, err)
	}
	code := run(context.Background(), o, &stdout, &stderr)
	var rep *loadgen.Report
	if stdout.Len() > 0 {
		rep = &loadgen.Report{}
		if err := json.Unmarshal(stdout.Bytes(), rep); err != nil {
			t.Fatalf("report is not JSON: %v\n%s", err, stdout.String())
		}
	}
	return code, rep, stderr.String()
}

// base flags for a fast in-process closed-loop run.
func fastArgs(extra ...string) []string {
	args := []string{
		"-requests", "40", "-concurrency", "1", "-seed", "7",
		"-jobs-min", "4", "-jobs-max", "10", "-distinct", "6",
	}
	return append(args, extra...)
}

// TestCLIDeterministicAcrossRuns: the acceptance criterion — two
// closed-loop in-process runs with the same seed issue the identical
// request sequence (asserted via recorded traces) and report identical
// counts.
func TestCLIDeterministicAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	t1 := filepath.Join(dir, "a.jsonl")
	t2 := filepath.Join(dir, "b.jsonl")

	code1, rep1, errOut := runCLI(t, fastArgs("-record", t1)...)
	if code1 != 0 {
		t.Fatalf("run 1 exited %d: %s", code1, errOut)
	}
	code2, rep2, errOut := runCLI(t, fastArgs("-record", t2)...)
	if code2 != 0 {
		t.Fatalf("run 2 exited %d: %s", code2, errOut)
	}

	plan1, err := loadgen.LoadTrace(t1)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := loadgen.LoadTrace(t2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan1, plan2) {
		t.Fatal("same seed produced different request sequences")
	}
	if !reflect.DeepEqual(rep1.Counts, rep2.Counts) {
		t.Fatalf("same seed produced different counts: %v vs %v", rep1.Counts, rep2.Counts)
	}
	if rep1.Requests != 40 {
		t.Fatalf("report covers %d requests, want 40", rep1.Requests)
	}

	// A different seed must change the sequence.
	t3 := filepath.Join(dir, "c.jsonl")
	if code, _, errOut := runCLI(t, "-requests", "40", "-concurrency", "1", "-seed", "8",
		"-jobs-min", "4", "-jobs-max", "10", "-distinct", "6", "-record", t3); code != 0 {
		t.Fatalf("run 3 exited %d: %s", code, errOut)
	}
	plan3, err := loadgen.LoadTrace(t3)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(plan1, plan3) {
		t.Fatal("different seeds produced identical request sequences")
	}
}

// TestCLIReplayReproducesTrace: -replay reissues the recorded sequence
// exactly — the re-recorded trace is byte-identical in content to the
// original plan.
func TestCLIReplayReproducesTrace(t *testing.T) {
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig.jsonl")
	rerec := filepath.Join(dir, "rerec.jsonl")

	if code, _, errOut := runCLI(t, fastArgs("-record", orig)...); code != 0 {
		t.Fatalf("record run exited %d: %s", code, errOut)
	}
	code, rep, errOut := runCLI(t, "-replay", orig, "-record", rerec, "-concurrency", "1")
	if code != 0 {
		t.Fatalf("replay run exited %d: %s", code, errOut)
	}
	if rep.Model != "replay-closed" {
		t.Errorf("replay report model = %q, want replay-closed", rep.Model)
	}

	got, err := loadgen.LoadTrace(rerec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := loadgen.LoadTrace(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("replay did not reproduce the original request sequence")
	}
	if rep.Requests != len(want) {
		t.Fatalf("replay issued %d requests, trace has %d", rep.Requests, len(want))
	}
}

// TestCLISmoke: the make loadgen-smoke contract — a short in-process
// closed-loop run produces a non-empty report with zero 5xx and all
// requests accounted for.
func TestCLISmoke(t *testing.T) {
	code, rep, errOut := runCLI(t, fastArgs()...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if rep == nil {
		t.Fatal("no report on stdout")
	}
	if rep.HTTP5xx != 0 {
		t.Fatalf("HTTP5xx = %d, want 0", rep.HTTP5xx)
	}
	var total int64
	for _, v := range rep.Counts {
		total += v
	}
	if total != int64(rep.Requests) || rep.Requests == 0 {
		t.Fatalf("counts sum %d, requests %d", total, rep.Requests)
	}
	if rep.ThroughputRPS <= 0 || rep.Latency.P99 <= 0 {
		t.Fatalf("report missing throughput/latency: %+v", rep)
	}
	if rep.GeneratedBy != "atload" || rep.Target != "in-process" {
		t.Fatalf("report provenance wrong: %+v", rep)
	}
}

// TestCLISLOExitCodes: a trivially satisfiable SLO passes with exit 0;
// an impossible one exits 1 with the verdict attached to the report.
func TestCLISLOExitCodes(t *testing.T) {
	code, rep, errOut := runCLI(t, fastArgs("-slo-p99", "60000", "-slo-max-error-rate", "0.5")...)
	if code != 0 {
		t.Fatalf("satisfiable SLO exited %d: %s", code, errOut)
	}
	if rep.SLO == nil || !rep.SLO.Pass {
		t.Fatalf("report missing passing SLO verdict: %+v", rep.SLO)
	}

	code, rep, errOut = runCLI(t, fastArgs("-slo-p99", "0.000001")...)
	if code != 1 {
		t.Fatalf("violated SLO exited %d, want 1 (stderr: %s)", code, errOut)
	}
	if rep.SLO == nil || rep.SLO.Pass || len(rep.SLO.Violations) == 0 {
		t.Fatalf("report missing failing SLO verdict: %+v", rep.SLO)
	}
	if errOut == "" {
		t.Error("SLO violation not reported on stderr")
	}
}

// TestCLIUsageErrors: invalid configs exit 2 before any work happens.
func TestCLIUsageErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad model":  {"-model", "warp"},
		"bad mix":    {"-mix", "laminar-0.5"},
		"bad family": {"-mix", "fractal=1"},
		"zero reqs":  {"-requests", "0"},
		"open no rate": {
			"-model", "poisson", "-rate", "0",
		},
	} {
		code, _, errOut := runCLI(t, args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", name, code, errOut)
		}
	}
}

// TestCLIReportFile: -report writes the JSON to a file instead of
// stdout.
func TestCLIReportFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	code, rep, errOut := runCLI(t, fastArgs("-report", path)...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if rep != nil {
		t.Fatal("report leaked to stdout despite -report")
	}
	var fromFile loadgen.Report
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &fromFile); err != nil {
		t.Fatalf("report file is not JSON: %v", err)
	}
	if fromFile.Requests == 0 {
		t.Fatal("report file empty")
	}
}

// TestCLIAsync: -async drives the run through the job API — every
// request is accounted for, nothing errors, and the report carries the
// per-SLO-class breakdown.
func TestCLIAsync(t *testing.T) {
	code, rep, errOut := runCLI(t, fastArgs("-async", "-queue-running", "2", "-queue-policy", "sjf")...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if rep.Counts[loadgen.ClassOK] != int64(rep.Requests) || rep.Requests != 40 {
		t.Fatalf("async run counts %v over %d requests, want all ok", rep.Counts, rep.Requests)
	}
	if rep.PerClass == nil {
		t.Fatal("async report has no per_class breakdown")
	}
	var total int64
	for class, cs := range rep.PerClass {
		if class != "interactive" && class != "batch" && class != "best_effort" {
			t.Fatalf("unknown SLO class %q in report", class)
		}
		total += cs.Requests
	}
	if total != int64(rep.Requests) {
		t.Fatalf("per-class requests sum to %d, want %d", total, rep.Requests)
	}
	if len(rep.PerClass) < 2 {
		t.Fatalf("size-correlated default produced only %d classes", len(rep.PerClass))
	}

	// An explicit class mix overrides the size-correlated default.
	code, rep, errOut = runCLI(t, fastArgs("-async", "-class-mix", "best_effort=1")...)
	if code != 0 {
		t.Fatalf("class-mix run exited %d: %s", code, errOut)
	}
	if len(rep.PerClass) != 1 || rep.PerClass["best_effort"] == nil {
		t.Fatalf("class mix best_effort=1 produced classes %v", rep.PerClass)
	}
}

// TestCLIAsyncUsageErrors: bad queue flags exit 2 before any work.
func TestCLIAsyncUsageErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad policy":    {"-async", "-queue-policy", "lifo"},
		"bad class mix": {"-async", "-class-mix", "gold=1"},
		"bad budget":    {"-async", "-queue-budget", "interactive=-1"},
	} {
		code, _, errOut := runCLI(t, args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", name, code, errOut)
		}
	}
}

// TestCLIOpenLoopModels: poisson and bursty models run open-loop
// in-process without failures at a modest rate.
func TestCLIOpenLoopModels(t *testing.T) {
	for _, model := range []string{"poisson", "bursty"} {
		code, rep, errOut := runCLI(t,
			"-model", model, "-requests", "20", "-rate", "2000", "-seed", "3",
			"-jobs-min", "4", "-jobs-max", "8", "-distinct", "4")
		if code != 0 {
			t.Fatalf("%s: exit %d: %s", model, code, errOut)
		}
		if rep.Model != model {
			t.Errorf("%s: report model = %q", model, rep.Model)
		}
		if rep.HTTP5xx != 0 {
			t.Errorf("%s: HTTP5xx = %d", model, rep.HTTP5xx)
		}
	}
}

// TestCLIDeltaWarmStarts: -delta turns the plan into a warm-start
// workload — the run stays clean and the report counts warm starts,
// including nested-growth supersets on the combinatorial path.
func TestCLIDeltaWarmStarts(t *testing.T) {
	code, rep, errOut := runCLI(t, fastArgs(
		"-requests", "80", "-distinct", "4",
		"-mix", "laminar=1", "-algorithm", "comb", "-delta",
	)...)
	if code != 0 {
		t.Fatalf("delta run exited %d: %s", code, errOut)
	}
	if rep.Errors > 0 {
		t.Fatalf("delta run had %d errors: %v", rep.Errors, rep.Counts)
	}
	if rep.WarmStarts == 0 {
		t.Fatal("delta run produced no warm starts")
	}
	if rep.WarmKinds["raise_g"] == 0 || rep.WarmKinds["superset"] == 0 {
		t.Fatalf("warm kinds not both exercised: %v", rep.WarmKinds)
	}
	if !strings.Contains(errOut, "atload: warm starts:") {
		t.Fatalf("stderr missing the warm-start summary:\n%s", errOut)
	}

	// Replays of a recorded delta plan materialize the same variants.
	dir := t.TempDir()
	trace := filepath.Join(dir, "delta.jsonl")
	if code, _, errOut := runCLI(t, fastArgs(
		"-requests", "20", "-mix", "laminar=1", "-delta", "-record", trace,
	)...); code != 0 {
		t.Fatalf("record run exited %d: %s", code, errOut)
	}
	plan, err := loadgen.LoadTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	var kinds int
	for _, r := range plan {
		if r.DeltaKind != "" {
			kinds++
		}
	}
	if kinds == 0 {
		t.Fatal("recorded delta trace carries no delta requests")
	}
}
