// Command atload is the workload driver for activetimed. It builds a
// seeded request plan (or replays a recorded JSONL trace), drives it
// closed-loop or open-loop against a real server (-target) or an
// in-process internal/server handler (the default), and emits a
// machine-readable JSON report with throughput, latency percentiles,
// and shed/timeout/cache-hit counts. With -slo-p99 / -slo-max-error-rate
// set, atload exits nonzero when the run violates the objective.
//
// Usage:
//
//	atload [-model closed|poisson|bursty] [-requests N] [-concurrency N]
//	       [-rate RPS] [-burst N] [-seed N] [-mix laminar=0.7,unit=0.2,general=0.1]
//	       [-jobs-min N] [-jobs-max N] [-g N] [-distinct N] [-algorithm NAME]
//	       [-delta]
//	       [-target URL] [-record PATH] [-replay PATH] [-report PATH]
//	       [-slo-p99 MS] [-slo-max-error-rate FRAC]
//	       [-workers N] [-max-inflight N] [-admission-wait DUR]
//	       [-solve-timeout DUR] [-cache-entries N] [-cache-warm-bytes N]
//	       [-async] [-poll DUR] [-class-mix interactive=0.5,batch=0.5]
//	       [-queue-policy fcfs|priority|sjf] [-queue-running N] [-queue-depth N]
//	       [-queue-budget class=N,...]
//	       [-events-file PATH] [-events-ring N]
//	       [-fleet N] [-route-policy round-robin|least-loaded|affinity] [-permute]
//
// With -delta roughly half the plan becomes near-miss variants of the
// pooled base instances (seed-varied raised-g and nested job growth),
// the workload EXPERIMENTS.md E24 uses to measure the server's
// warm-start path; the report counts warm starts per kind.
//
// With -async the driver goes through the job API: each request is
// submitted to POST /jobs with its SLO class and polled to a terminal
// state; the report breaks latency out per class, which is how the
// SJF-vs-FCFS experiments (EXPERIMENTS.md E20) are measured.
//
// With -events-file (in-process runs only) the server writes its
// wide-event JSONL log to PATH, and after the run atload reconciles
// the client-side results against it by request id — every issued
// request must have exactly one server event, with predicted and
// measured cost populated for solved requests. The verdict lands in
// the report's events_crosscheck block; a mismatch exits 1.
// -events-ring sizes the server's in-memory event ring (0 disables
// the telemetry pipeline, the configuration E21 uses to measure
// wide-event overhead).
//
// With -fleet N the in-process target becomes a fleet: N replicas
// behind the internal/cluster router, with -route-policy picking how
// requests spread (round-robin, least-loaded, or cache-affinity via
// the canonical instance digest). The report gains a fleet block with
// per-replica routing and cache counters plus the aggregate cache hit
// rate — the number EXPERIMENTS.md E23 compares across policies.
// -permute gives every request a fresh job-order permutation of its
// instance, so repeats are only visible to canonicalization (the
// replicas' cache digests and the router's affinity key), not to
// anything keyed on raw body bytes. -events-file works under -fleet:
// all replicas share one JSONL sink and the cross-check reconciles
// through the proxy's request ids.
//
// Exit codes: 0 success, 1 SLO violation, cross-check failure, or run
// error, 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/loadgen"
	"repro/internal/server"
)

// options carries every flag; run consumes it so tests can drive the
// whole CLI without a subprocess.
type options struct {
	model       string
	requests    int
	concurrency int
	rate        float64
	burst       int
	seed        int64
	mix         string
	jobsMin     int
	jobsMax     int
	g           int64
	distinct    int
	algorithm   string
	timeoutMS   int64
	delta       bool

	target string
	record string
	replay string
	report string

	sloP99    float64
	sloMaxErr float64

	// Async job-API driving.
	async    bool
	poll     time.Duration
	classMix string

	// In-process server knobs (ignored when -target is set).
	workers        int
	maxInFlight    int
	admissionWait  time.Duration
	solveTimeout   time.Duration
	cacheEntries   int
	cacheWarmBytes int64
	queuePolicy    string
	queueRunning   int
	queueDepth     int
	queueBudget    string
	eventsFile     string
	eventsRing     int

	// Fleet mode (in-process only).
	fleet       int
	routePolicy string
	permute     bool
}

func parseFlags(args []string, stderr io.Writer) (*options, error) {
	def := loadgen.DefaultPlanConfig()
	o := &options{}
	fs := flag.NewFlagSet("atload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&o.model, "model", def.Model, "arrival model: closed | poisson | bursty")
	fs.IntVar(&o.requests, "requests", def.Requests, "total requests in the plan")
	fs.IntVar(&o.concurrency, "concurrency", 4, "closed-loop worker count")
	fs.Float64Var(&o.rate, "rate", def.Rate, "open-loop mean arrival rate, requests/second")
	fs.IntVar(&o.burst, "burst", def.BurstSize, "bursty model: mean burst size")
	fs.Int64Var(&o.seed, "seed", def.Seed, "plan seed; equal seeds give identical plans")
	fs.StringVar(&o.mix, "mix", "laminar=0.7,unit=0.2,general=0.1", "instance family mix, family=weight[,...]")
	fs.IntVar(&o.jobsMin, "jobs-min", def.MinJobs, "minimum jobs per instance")
	fs.IntVar(&o.jobsMax, "jobs-max", def.MaxJobs, "maximum jobs per instance")
	fs.Int64Var(&o.g, "g", def.G, "machine capacity of generated instances")
	fs.IntVar(&o.distinct, "distinct", def.DistinctInstances, "distinct-instance pool size (0 = every request fresh)")
	fs.StringVar(&o.algorithm, "algorithm", "", "force one solver on every request (default: auto — the server routes per instance)")
	fs.Int64Var(&o.timeoutMS, "timeout-ms", 0, "per-request timeout_ms forwarded to the server (0 = none)")
	fs.BoolVar(&o.delta, "delta", false, "make ~half the plan near-miss variants of pooled bases (exercises the server's warm-start path)")
	fs.StringVar(&o.target, "target", "", "base URL of a running activetimed (empty = in-process server)")
	fs.StringVar(&o.record, "record", "", "write the plan as a JSONL trace to this path")
	fs.StringVar(&o.replay, "replay", "", "replay a recorded JSONL trace instead of building a plan")
	fs.StringVar(&o.report, "report", "", "write the JSON report to this path (default: stdout)")
	fs.Float64Var(&o.sloP99, "slo-p99", 0, "SLO: maximum p99 latency in ms (0 = not enforced)")
	fs.Float64Var(&o.sloMaxErr, "slo-max-error-rate", 0, "SLO: maximum error fraction in [0,1] (0 = not enforced)")
	fs.IntVar(&o.workers, "workers", 1, "in-process server: per-solve worker-pool size")
	fs.IntVar(&o.maxInFlight, "max-inflight", 16, "in-process server: max concurrent solves (0 = unlimited)")
	fs.DurationVar(&o.admissionWait, "admission-wait", 100*time.Millisecond, "in-process server: admission wait before 429")
	fs.DurationVar(&o.solveTimeout, "solve-timeout", 0, "in-process server: per-solve wall cap (0 = unlimited)")
	fs.IntVar(&o.cacheEntries, "cache-entries", 256, "in-process server: solve-cache LRU capacity")
	fs.Int64Var(&o.cacheWarmBytes, "cache-warm-bytes", 64<<20, "in-process server: warm-state byte budget for near-miss warm starts (0 disables)")
	fs.BoolVar(&o.async, "async", false, "drive the job API (POST /jobs + poll) instead of /solve")
	fs.DurationVar(&o.poll, "poll", 2*time.Millisecond, "async: job status poll interval")
	fs.StringVar(&o.classMix, "class-mix", "", "async: SLO class mix, class=weight[,...] (empty = small→interactive, large→batch)")
	fs.StringVar(&o.queuePolicy, "queue-policy", "sjf", "in-process server: job scheduling policy (fcfs | priority | sjf)")
	fs.IntVar(&o.queueRunning, "queue-running", 2, "in-process server: job execution slots")
	fs.IntVar(&o.queueDepth, "queue-depth", 256, "in-process server: max queued jobs")
	fs.StringVar(&o.queueBudget, "queue-budget", "", "in-process server: per-class admission budgets, class=N[,...]")
	fs.StringVar(&o.eventsFile, "events-file", "", "in-process server: write wide-event JSONL here and cross-check it against client results")
	fs.IntVar(&o.eventsRing, "events-ring", 4096, "in-process server: wide-event ring size (0 disables the telemetry pipeline)")
	fs.IntVar(&o.fleet, "fleet", 0, "run N in-process replicas behind the cluster router (0 = single server)")
	fs.StringVar(&o.routePolicy, "route-policy", cluster.PolicyAffinity, "fleet routing policy: round-robin | least-loaded | affinity")
	fs.BoolVar(&o.permute, "permute", false, "permute each request's job order (distinct bodies, same canonical instance)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.eventsFile != "" && o.target != "" {
		return nil, fmt.Errorf("-events-file requires the in-process server (drop -target)")
	}
	if o.eventsFile != "" && o.eventsRing <= 0 {
		return nil, fmt.Errorf("-events-file requires -events-ring > 0 (the pipeline is disabled at 0)")
	}
	if o.fleet < 0 {
		return nil, fmt.Errorf("-fleet = %d, want >= 0", o.fleet)
	}
	if o.fleet > 0 && o.target != "" {
		return nil, fmt.Errorf("-fleet runs an in-process fleet (drop -target)")
	}
	return o, nil
}

// parseMix turns "laminar=0.7,unit=0.2" into mix entries.
func parseMix(s string) ([]loadgen.MixEntry, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var mix []loadgen.MixEntry
	for _, part := range strings.Split(s, ",") {
		fam, weight, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want family=weight", part)
		}
		w, err := strconv.ParseFloat(weight, 64)
		if err != nil {
			return nil, fmt.Errorf("mix entry %q: %w", part, err)
		}
		mix = append(mix, loadgen.MixEntry{Family: strings.TrimSpace(fam), Weight: w})
	}
	return mix, nil
}

// parseClassMix turns "interactive=0.5,batch=0.5" into class weights.
func parseClassMix(s string) ([]loadgen.ClassWeight, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var mix []loadgen.ClassWeight
	for _, part := range strings.Split(s, ",") {
		class, weight, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("class-mix entry %q: want class=weight", part)
		}
		w, err := strconv.ParseFloat(weight, 64)
		if err != nil {
			return nil, fmt.Errorf("class-mix entry %q: %w", part, err)
		}
		mix = append(mix, loadgen.ClassWeight{Class: strings.TrimSpace(class), Weight: w})
	}
	return mix, nil
}

func (o *options) planConfig() (loadgen.PlanConfig, error) {
	mix, err := parseMix(o.mix)
	if err != nil {
		return loadgen.PlanConfig{}, err
	}
	classMix, err := parseClassMix(o.classMix)
	if err != nil {
		return loadgen.PlanConfig{}, err
	}
	return loadgen.PlanConfig{
		Requests:          o.requests,
		Seed:              o.seed,
		Model:             o.model,
		Rate:              o.rate,
		BurstSize:         o.burst,
		ParetoAlpha:       1.5,
		Mix:               mix,
		MinJobs:           o.jobsMin,
		MaxJobs:           o.jobsMax,
		G:                 o.g,
		DistinctInstances: o.distinct,
		PermuteInstances:  o.permute,
		Delta:             o.delta,
		Algorithm:         o.algorithm,
		TimeoutMS:         o.timeoutMS,
		Async:             o.async,
		ClassMix:          classMix,
	}, nil
}

// run executes one atload invocation: plan (or replay), drive, report,
// evaluate. It returns the process exit code. reportOut receives the
// JSON report when o.report is empty.
func run(ctx context.Context, o *options, reportOut, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintf(stderr, "atload: %v\n", err)
		return 1
	}

	var plan []loadgen.Request
	var err error
	if o.replay != "" {
		plan, err = loadgen.LoadTrace(o.replay)
		if err != nil {
			return fail(err)
		}
	} else {
		cfg, cfgErr := o.planConfig()
		if cfgErr != nil {
			fmt.Fprintf(stderr, "atload: %v\n", cfgErr)
			return 2
		}
		plan, err = loadgen.BuildPlan(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "atload: %v\n", err)
			return 2
		}
	}
	if o.record != "" {
		if err := loadgen.SaveTrace(o.record, plan); err != nil {
			return fail(err)
		}
	}

	var prepared []loadgen.Prepared
	if o.async {
		prepared, err = loadgen.PrepareAsync(plan)
	} else {
		prepared, err = loadgen.Prepare(plan)
	}
	if err != nil {
		return fail(err)
	}

	slo := loadgen.SLO{P99MaxMS: o.sloP99, MaxErrorRate: o.sloMaxErr}

	var client *loadgen.Client
	var fleet *cluster.LocalFleet
	var router *cluster.Router
	target := o.target
	if target != "" {
		client = loadgen.NewHTTPClient(target)
	} else {
		target = "in-process"
		if _, err := jobs.PolicyByName(o.queuePolicy); err != nil {
			fmt.Fprintf(stderr, "atload: %v\n", err)
			return 2
		}
		budgets, err := jobs.ParseBudgets(o.queueBudget)
		if err != nil {
			fmt.Fprintf(stderr, "atload: %v\n", err)
			return 2
		}
		var eventSink io.Writer
		if o.eventsFile != "" {
			f, err := os.Create(o.eventsFile)
			if err != nil {
				return fail(err)
			}
			defer f.Close()
			eventSink = f
			if o.fleet > 0 {
				// Every replica's pipeline writes whole lines to the shared
				// sink; a mutex around Write keeps the file line-atomic.
				eventSink = &lockedWriter{w: f}
			}
		}
		log := slog.New(slog.NewTextHandler(io.Discard, nil))
		cfg := server.Config{
			DefaultWorkers: o.workers,
			MaxInFlight:    o.maxInFlight,
			AdmissionWait:  o.admissionWait,
			SolveTimeout:   o.solveTimeout,
			CacheEntries:   o.cacheEntries,
			CacheWarmBytes: o.cacheWarmBytes,
			JobsMaxRunning: o.queueRunning,
			JobsMaxQueued:  o.queueDepth,
			JobsPolicy:     o.queuePolicy,
			JobsBudgets:    budgets,
			EventRing:      o.eventsRing,
			EventSink:      eventSink,
			SLOTarget:      slo.Objectives(),
		}
		if o.fleet > 0 {
			fleet = cluster.NewLocalFleet(log, o.fleet, cfg)
			router, err = cluster.New(log, cluster.Config{
				Backends: fleet.Backends(),
				Policy:   o.routePolicy,
			})
			if err != nil {
				fmt.Fprintf(stderr, "atload: %v\n", err)
				return 2
			}
			// No Start(): local replicas cannot crash, so the run does not
			// need the prober, and skipping it keeps reports deterministic.
			defer router.Close()
			defer func() {
				closeCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				_ = fleet.Close(closeCtx)
			}()
			client = loadgen.NewInProcessClient(router.Handler())
			target = fmt.Sprintf("in-process-fleet-%d", o.fleet)
		} else {
			srv := server.New(log, cfg)
			defer func() {
				closeCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				_ = srv.Close(closeCtx)
			}()
			client = loadgen.NewInProcessClient(srv.Handler())
		}
	}
	if o.async {
		client = client.Async(o.poll)
	}

	model := o.model
	if o.replay != "" {
		// A replayed trace carries its own arrival offsets; any nonzero
		// offset means open-loop pacing.
		model = loadgen.ModelClosed
		for _, r := range plan {
			if r.ArrivalMS > 0 {
				model = "replay-open"
				break
			}
		}
		if model == loadgen.ModelClosed {
			model = "replay-closed"
		}
	}

	var results []loadgen.Result
	var wall time.Duration
	if strings.HasSuffix(model, "-open") || model == loadgen.ModelPoisson || model == loadgen.ModelBursty {
		results, wall = loadgen.RunOpen(ctx, client, prepared)
	} else {
		results, wall = loadgen.RunClosed(ctx, client, prepared, o.concurrency)
	}

	rep := loadgen.BuildReport(results, wall, model, target, o.seed, o.concurrency)
	if router != nil {
		rep.Fleet = fleetReport(ctx, router, fleet)
		fmt.Fprintf(stderr, "atload: fleet policy=%s replicas=%d cache_hit_rate=%.3f (hits=%d misses=%d)\n",
			rep.Fleet.Policy, len(rep.Fleet.Replicas), rep.Fleet.CacheHitRate,
			rep.Fleet.CacheHits, rep.Fleet.CacheMisses)
	}
	var verdict *loadgen.SLOResult
	if slo.Enabled() {
		verdict = slo.Evaluate(rep)
	}
	if o.eventsFile != "" {
		// Every result is terminal before the runner returns, and the
		// server emits each wide event before the response (sync) or the
		// terminal poll (async) can be observed, so the JSONL sink is
		// complete here.
		events, err := loadgen.LoadEvents(o.eventsFile)
		if err != nil {
			return fail(err)
		}
		rep.CrossCheck = loadgen.CrossCheckEvents(results, events)
	}

	out := reportOut
	if o.report != "" {
		f, err := os.Create(o.report)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		out = f
	}
	if err := rep.WriteJSON(out); err != nil {
		return fail(err)
	}
	if len(rep.Algorithms) > 0 {
		// One visible line on what actually executed: plans default to
		// algorithm "auto", so the solver is the server router's choice,
		// not something this client decided.
		names := make([]string, 0, len(rep.Algorithms))
		for name := range rep.Algorithms {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, name := range names {
			parts[i] = fmt.Sprintf("%s=%d", name, rep.Algorithms[name])
		}
		fmt.Fprintf(stderr, "atload: algorithms executed (server-routed): %s\n", strings.Join(parts, " "))
	}
	if rep.WarmStarts > 0 {
		kinds := make([]string, 0, len(rep.WarmKinds))
		for kind := range rep.WarmKinds {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds)
		parts := make([]string, len(kinds))
		for i, kind := range kinds {
			parts[i] = fmt.Sprintf("%s=%d", kind, rep.WarmKinds[kind])
		}
		fmt.Fprintf(stderr, "atload: warm starts: %d (%s)\n", rep.WarmStarts, strings.Join(parts, " "))
	}

	if verdict != nil && !verdict.Pass {
		fmt.Fprintf(stderr, "atload: SLO violated: %s\n", strings.Join(verdict.Violations, "; "))
		return 1
	}
	if cc := rep.CrossCheck; cc != nil && !cc.Pass {
		fmt.Fprintf(stderr, "atload: event cross-check failed: %d/%d matched, %d missing, %d duplicate, %d solved without cost\n",
			cc.Matched, cc.ClientWithID, cc.MissingCount, cc.DuplicateCount, cc.SolvedMissingN)
		return 1
	}
	return 0
}

// lockedWriter serializes the fleet replicas' writes into one shared
// JSONL sink.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// fleetReport assembles the report's fleet block: the router's routing
// counters, each replica's solve-cache totals, and the fleet SLO fold.
func fleetReport(ctx context.Context, router *cluster.Router, fleet *cluster.LocalFleet) *loadgen.FleetReport {
	fr := &loadgen.FleetReport{Policy: router.Policy(), SuccessRatio: 1}
	routed := make(map[string]metricsSnapshot, fleet.Size())
	for _, snap := range router.Registry().Snapshot() {
		routed[snap.Name] = metricsSnapshot{snap.Healthy, snap.Routed, snap.Errors, snap.Ejections, snap.Readmissions}
	}
	slo := router.SLO(ctx)
	for i := 0; i < fleet.Size(); i++ {
		name := fmt.Sprintf("replica-%d", i)
		reg := fleet.Server(i).Registry()
		rep := loadgen.FleetReplica{
			Name:         name,
			Healthy:      true,
			SuccessRatio: 1,
			Solves:       reg.Solves(),
			CacheHits:    reg.CacheHits(),
			CacheMisses:  reg.CacheMisses(),
		}
		if s, ok := routed[name]; ok {
			rep.Healthy, rep.Routed, rep.ForwardErrors = s.healthy, s.routed, s.errors
			rep.Ejections, rep.Readmissions = s.ejections, s.readmissions
		}
		if lookups := rep.CacheHits + rep.CacheMisses; lookups > 0 {
			rep.CacheHitRate = float64(rep.CacheHits) / float64(lookups)
		}
		// The longest rolling window covers the whole (short) run.
		if sum, ok := slo.Replicas[name]; ok && len(sum.Windows) > 0 {
			rep.SuccessRatio = sum.Windows[len(sum.Windows)-1].SuccessRatio
		}
		fr.CacheHits += rep.CacheHits
		fr.CacheMisses += rep.CacheMisses
		fr.Replicas = append(fr.Replicas, rep)
	}
	if lookups := fr.CacheHits + fr.CacheMisses; lookups > 0 {
		fr.CacheHitRate = float64(fr.CacheHits) / float64(lookups)
	}
	if ws := slo.Aggregate.Windows; len(ws) > 0 {
		fr.SuccessRatio = ws[len(ws)-1].SuccessRatio
	}
	return fr
}

// metricsSnapshot is the slice of a router replica snapshot the fleet
// block reuses.
type metricsSnapshot struct {
	healthy                                 bool
	routed, errors, ejections, readmissions int64
}

func main() {
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "atload: %v\n", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, o, os.Stdout, os.Stderr))
}
