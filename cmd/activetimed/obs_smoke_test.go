package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestObsSmoke is the telemetry smoke: build the real binary, boot it
// with the wide-event pipeline on, drive sync and async traffic plus
// one error, then require over real HTTP that /debug/events carries
// one event per request, /debug/slo reflects the traffic, the errored
// request's trace was tail-sampled, /metrics exposes the new series,
// and the JSONL sink on disk parses. `make obs-smoke` runs exactly
// this test.
func TestObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "activetimed")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	portFile := filepath.Join(dir, "port")
	eventsFile := filepath.Join(dir, "events.jsonl")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-port-file", portFile,
		"-events-ring", "128", "-events-file", eventsFile,
		"-tail-slow", "10m", // only errors/sheds retain traces
		"-slo-p99", "250", "-slo-max-error-rate", "0.01")
	var logs strings.Builder
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var addr string
	for i := 0; i < 100; i++ {
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never wrote port file; logs:\n%s", logs.String())
	}

	post := func(path, body string) (int, []byte) {
		resp, err := http.Post("http://"+addr+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v\nlogs:\n%s", path, err, logs.String())
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, data
	}
	get := func(path string) (int, []byte) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v\nlogs:\n%s", path, err, logs.String())
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, data
	}

	// Traffic: two sync solves (second cached), one async job driven to
	// done, one invalid instance (422, trace-retained).
	instance := `{"g":2,"jobs":[{"p":2,"r":0,"d":6},{"p":1,"r":0,"d":3}]}`
	if code, data := post("/solve", `{"instance":`+instance+`}`); code != http.StatusOK {
		t.Fatalf("solve: %d %s", code, data)
	}
	if code, data := post("/solve", `{"instance":`+instance+`}`); code != http.StatusOK ||
		!strings.Contains(string(data), `"cached":true`) {
		t.Fatalf("warm solve: %d %s", code, data)
	}
	code, data := post("/jobs", `{"instance":`+instance+`,"class":"interactive"}`)
	if code != http.StatusAccepted {
		t.Fatalf("job submit: %d %s", code, data)
	}
	var sub struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil || sub.JobID == "" {
		t.Fatalf("submit body: %v %s", err, data)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, data := get("/jobs/" + sub.JobID)
		if code != http.StatusOK {
			t.Fatalf("poll: %d %s", code, data)
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "canceled" || st.State == "shed" ||
			time.Now().After(deadline) {
			t.Fatalf("job state %q: %s", st.State, data)
		}
		time.Sleep(10 * time.Millisecond)
	}
	ecode, edata := post("/solve", `{"instance":{"g":1,"jobs":[{"p":3,"r":0,"d":3},{"p":3,"r":0,"d":3}]}}`)
	if ecode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible solve: %d %s", ecode, edata)
	}
	var errResp struct {
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(edata, &errResp); err != nil || errResp.RequestID == "" {
		t.Fatalf("error body without request id: %s", edata)
	}

	// The sync event is emitted after the response is written, so poll
	// /debug/events until all 4 requests have landed.
	var page struct {
		Total  int64 `json:"total_emitted"`
		Events []map[string]any
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		code, data := get("/debug/events")
		if code != http.StatusOK {
			t.Fatalf("/debug/events: %d %s", code, data)
		}
		if err := json.Unmarshal(data, &page); err != nil {
			t.Fatalf("events page: %v\n%s", err, data)
		}
		if page.Total >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d events after traffic: %s", page.Total, data)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if page.Total != 4 {
		t.Fatalf("events total %d, want 4", page.Total)
	}
	statuses := map[string]int{}
	for _, ev := range page.Events {
		statuses[fmt.Sprint(ev["status"])]++
	}
	if statuses["ok"] != 2 || statuses["cached"] != 1 || statuses["client_error"] != 1 {
		t.Fatalf("event statuses %v, want ok:2 cached:1 client_error:1", statuses)
	}

	// Tail sampling kept the errored request's trace and nothing else.
	if code, data := get("/debug/traces/" + errResp.RequestID); code != http.StatusOK ||
		!strings.Contains(string(data), "traceEvents") {
		t.Errorf("errored trace: %d %s", code, data)
	}

	_, sdata := get("/debug/slo")
	var slo struct {
		Windows []struct {
			Window   string `json:"window"`
			Requests int64  `json:"requests"`
			Errors   int64  `json:"errors"`
		} `json:"windows"`
	}
	if err := json.Unmarshal(sdata, &slo); err != nil || len(slo.Windows) != 3 {
		t.Fatalf("/debug/slo: %v %s", err, sdata)
	}
	if slo.Windows[0].Requests != 4 || slo.Windows[0].Errors != 1 {
		t.Errorf("slo window %+v, want 4 requests / 1 error", slo.Windows[0])
	}

	_, mdata := get("/metrics")
	for _, want := range []string{
		"activetime_build_info{version=",
		`activetime_slo_requests{window="1m"} 4`,
		"activetime_slo_latency_objective_ms 250",
		`activetime_costmodel_abs_pct_err_count{family="laminar",class="sync"}`,
	} {
		if !strings.Contains(string(mdata), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Clean shutdown, then the JSONL sink must hold the same 4 events.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit after SIGTERM: %v\nlogs:\n%s", err, logs.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("no exit within 10s of SIGTERM; logs:\n%s", logs.String())
	}
	raw, err := os.ReadFile(eventsFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 4 {
		t.Fatalf("sink lines %d, want 4:\n%s", len(lines), raw)
	}
	for _, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("corrupt sink line %q: %v", line, err)
		}
		if ev["schema"] != "activetime-event/v1" || ev["request_id"] == "" {
			t.Fatalf("sink event malformed: %s", line)
		}
	}
}
