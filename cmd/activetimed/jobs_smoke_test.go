package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// heavyInstanceJSON builds `blocks` disjoint nested chains of the
// given depth (inside a block, job i has window [i, 2·depth−i), all
// unit processing, g=2). Depth 30 × 30 blocks solves in ~200ms — real
// solver work that holds the single job runner busy while the test
// stacks the queue behind it, without the memory blowup a single very
// deep chain would cause.
func heavyInstanceJSON(depth, blocks int) string {
	var b strings.Builder
	b.WriteString(`{"g":2,"jobs":[`)
	for blk := 0; blk < blocks; blk++ {
		off := blk * 3 * depth
		for i := 0; i < depth; i++ {
			if blk+i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `{"p":1,"r":%d,"d":%d}`, off+i, off+2*depth-i)
		}
	}
	b.WriteString(`]}`)
	return b.String()
}

// TestJobsSmoke is the job-API service smoke that `make jobs-smoke`
// runs: build the real binary, boot it with a single job runner under
// the priority policy, hold the runner with a heavy batch job, stack a
// second heavy batch job plus five interactive jobs behind it, and
// require (a) the queue reports the interactive jobs ahead of the
// batch job, (b) the batch job never finishes before the interactive
// jobs (the class-reorder guarantee, observed over real HTTP), (c) the
// SSE stream replays a completed job's history through its terminal
// event, and (d) /metrics carries the per-class job series.
func TestJobsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "activetimed")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	portFile := filepath.Join(dir, "port")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-port-file", portFile,
		"-jobs-running", "1", "-jobs-queued", "64", "-jobs-policy", "priority")
	var logs strings.Builder
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var addr string
	for i := 0; i < 100; i++ {
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never wrote port file; logs:\n%s", logs.String())
	}
	base := "http://" + addr

	submit := func(instance, class string) string {
		body := fmt.Sprintf(`{"instance":%s,"class":%q}`, instance, class)
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /jobs: %v\nlogs:\n%s", err, logs.String())
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /jobs: status %d: %s", resp.StatusCode, data)
		}
		var sub struct {
			JobID string `json:"job_id"`
		}
		if err := json.Unmarshal(data, &sub); err != nil || sub.JobID == "" {
			t.Fatalf("submit response without job_id: %s", data)
		}
		return sub.JobID
	}
	type status struct {
		State    string `json:"state"`
		Position *int   `json:"position"`
		Error    string `json:"error"`
	}
	get := func(id string) status {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatalf("GET /jobs/%s: %v", id, err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d: %s", id, resp.StatusCode, data)
		}
		var st status
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("GET /jobs/%s: %v: %s", id, err, data)
		}
		return st
	}
	terminal := func(s string) bool {
		return s == "done" || s == "failed" || s == "canceled" || s == "shed"
	}

	heavy := heavyInstanceJSON(30, 30)
	small := `{"g":2,"jobs":[{"p":2,"r":0,"d":6},{"p":1,"r":0,"d":3}]}`

	// Hold the single runner with a heavy batch job.
	h1 := submit(heavy, "batch")
	for i := 0; get(h1).State == "queued" && i < 200; i++ {
		time.Sleep(time.Millisecond)
	}

	// Stack a second heavy batch job, then five interactive jobs, behind
	// the held runner.
	h2 := submit(heavy, "batch")
	var interactive []string
	for i := 0; i < 5; i++ {
		interactive = append(interactive, submit(small, "interactive"))
	}

	// The priority policy must report every still-queued interactive job
	// ahead of the queued batch job. (If the heavy job finished absurdly
	// fast the queue may have drained — the completion-order invariant
	// below still holds — but on any realistic machine h2 is queued here.)
	if st := get(h2); st.State == "queued" && st.Position != nil {
		for _, id := range interactive {
			ist := get(id)
			if ist.State == "queued" && ist.Position != nil && *ist.Position > *st.Position {
				t.Fatalf("interactive job %s at position %d behind batch job at %d",
					id, *ist.Position, *st.Position)
			}
		}
	}

	// Drain: whenever the second batch job is observed terminal, every
	// interactive job must already be terminal — the runner only picks
	// the batch job once no interactive job is queued.
	deadline := time.Now().Add(60 * time.Second)
	for {
		h2st := get(h2)
		if h2st.State == "done" {
			for _, id := range interactive {
				if st := get(id); !terminal(st.State) {
					t.Fatalf("batch job done while interactive job %s still %s", id, st.State)
				}
			}
		}
		allDone := terminal(h2st.State) && terminal(get(h1).State)
		for _, id := range interactive {
			allDone = allDone && terminal(get(id).State)
		}
		if allDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs did not drain; logs:\n%s", logs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, id := range append([]string{h1, h2}, interactive...) {
		if st := get(id); st.State != "done" {
			t.Fatalf("job %s ended %s (%s), want done", id, st.State, st.Error)
		}
	}

	// SSE replay of a completed job ends at its terminal state event and
	// includes solver spans.
	resp, err := http.Get(base + "/jobs/" + h1 + "/events")
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(stream), `"state":"done"`) {
		t.Fatalf("SSE replay missing terminal event:\n%s", stream)
	}
	if !strings.Contains(string(stream), "event: span") {
		t.Fatalf("SSE replay has no solver spans:\n%s", stream)
	}

	// The per-class job series are exposed and account for this run.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`activetime_jobs_submitted_total{class="interactive"} 5`,
		`activetime_jobs_submitted_total{class="batch"} 2`,
		`activetime_jobs_completed_total{class="interactive",outcome="done"} 5`,
		`activetime_jobs_completed_total{class="batch",outcome="done"} 2`,
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited non-zero after SIGTERM: %v\nlogs:\n%s", err, logs.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not exit within 10s of SIGTERM; logs:\n%s", logs.String())
	}
}
