package main

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the full service smoke: build the real binary,
// boot it on a random port, hit /healthz and /metrics over real HTTP,
// validate the exposition parses, then shut it down with SIGTERM and
// require a clean exit. `make serve-smoke` runs exactly this test.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "activetimed")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	portFile := filepath.Join(dir, "port")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-port-file", portFile)
	var logs strings.Builder
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the port file.
	var addr string
	for i := 0; i < 100; i++ {
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never wrote port file; logs:\n%s", logs.String())
	}

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v\nlogs:\n%s", path, err, logs.String())
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	if body := get("/healthz"); !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthz body: %s", body)
	}

	// Solve the same instance twice over real HTTP: the second request
	// must be served from the canonicalization-keyed cache.
	post := func() string {
		resp, err := http.Post("http://"+addr+"/solve", "application/json",
			strings.NewReader(`{"instance":{"g":2,"jobs":[{"p":2,"r":0,"d":6},{"p":1,"r":0,"d":3}]}}`))
		if err != nil {
			t.Fatalf("POST /solve: %v\nlogs:\n%s", err, logs.String())
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /solve: status %d: %s", resp.StatusCode, body)
		}
		return string(body)
	}
	if body := post(); strings.Contains(body, `"cached":true`) {
		t.Fatalf("cold solve claims to be cached: %s", body)
	}
	if body := post(); !strings.Contains(body, `"cached":true`) {
		t.Fatalf("warm solve not served from cache: %s", body)
	}

	metricsBody := get("/metrics")
	validateExposition(t, metricsBody)
	for _, want := range []string{
		"activetime_cache_hits_total 1",
		"activetime_cache_misses_total 1",
		"activetime_solves_total 1", // the hit did not re-solve
		"activetime_admission_shed_total 0",
		"activetime_solve_timeouts_total 0",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("metrics missing %q:\n%s", want, metricsBody)
		}
	}

	// Clean shutdown on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited non-zero after SIGTERM: %v\nlogs:\n%s", err, logs.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not exit within 10s of SIGTERM; logs:\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), "shutting down") {
		t.Errorf("logs missing shutdown line:\n%s", logs.String())
	}
}

var smokeSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+-]+|NaN)$`)

// validateExposition asserts the body is well-formed Prometheus text
// format and exposes the service's key metric families.
func validateExposition(t *testing.T, body string) {
	t.Helper()
	types := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			f := strings.Fields(line)
			if len(f) >= 4 && f[1] == "TYPE" {
				types[f[2]] = f[3]
			}
			continue
		}
		if !smokeSample.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
	for name, typ := range map[string]string{
		"activetime_solves_total":           "counter",
		"activetime_solves_in_flight":       "gauge",
		"activetime_inflight_requests":      "gauge",
		"activetime_admission_queue_depth":  "gauge",
		"activetime_stage_seconds_total":    "counter",
		"activetime_ops_total":              "counter",
		"activetime_solve_duration_seconds": "histogram",
		"activetime_admission_shed_total":   "counter",
		"activetime_solve_timeouts_total":   "counter",
		"activetime_cache_hits_total":       "counter",
		"activetime_cache_misses_total":     "counter",
		"activetime_cache_coalesced_total":  "counter",
	} {
		if types[name] != typ {
			t.Errorf("metric %s: type %q, want %q", name, types[name], typ)
		}
	}
}
