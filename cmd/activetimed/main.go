// Command activetimed is the long-running active-time solver service.
// It exposes:
//
//	POST /solve             solve an instance (JSON in, JSON out)
//	POST /jobs              submit an async solve job (SLO-class scheduled)
//	GET  /jobs/{id}         poll a job (result inline once done)
//	DELETE /jobs/{id}       cancel a job
//	GET  /jobs/{id}/events  job progress as server-sent events
//	GET  /healthz           liveness probe (build identity included)
//	GET  /metrics           Prometheus text exposition (cumulative)
//	GET  /debug/pprof/...   net/http/pprof profiling endpoints
//	GET  /debug/events      recent wide events (filter: status, class, path, limit)
//	GET  /debug/slo         rolling 1m/10m/1h SLO burn-rate summary
//	GET  /debug/traces/{id} tail-sampled Chrome-trace JSON for one request
//
// Logs are structured (log/slog) with a per-request ID on every
// /solve line. See README.md "Running the service" for curl examples.
//
// Usage:
//
//	activetimed [-addr 127.0.0.1:8080] [-workers N] [-log json|text] [-port-file PATH]
//	            [-max-inflight N] [-admission-wait DUR] [-solve-timeout DUR] [-cache-entries N]
//	            [-max-solve-mem BYTES]
//	            [-jobs-running N] [-jobs-queued N] [-jobs-policy fcfs|priority|sjf]
//	            [-jobs-budget class=N,...] [-cost-model PATH]
//	            [-events-ring N] [-events-file PATH] [-tail-slow DUR] [-tail-traces N]
//	            [-slo-p99 MS] [-slo-max-error-rate F] [-drain-wait DUR]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/costmodel"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
	workers := flag.Int("workers", 1, "default per-solve worker-pool size for independent forests")
	logFormat := flag.String("log", "json", "log format: json | text")
	portFile := flag.String("port-file", "", "write the bound host:port to this file once listening (for smoke tests)")
	maxInFlight := flag.Int("max-inflight", 16, "maximum concurrently executing solves (0 disables admission control)")
	admissionWait := flag.Duration("admission-wait", 100*time.Millisecond, "how long a request waits for an in-flight slot before 429")
	solveTimeout := flag.Duration("solve-timeout", 0, "per-solve wall-time cap (0 = unlimited); requests can only tighten it")
	cacheEntries := flag.Int("cache-entries", 256, "solve-result LRU capacity (0 disables caching and coalescing)")
	cacheWarmBytes := flag.Int64("cache-warm-bytes", 64<<20, "budget for warm solver state retained on cache entries for near-miss warm starts (0 disables warm starts)")
	maxSolveMem := flag.Int64("max-solve-mem", 1<<30, "reject (422) explicitly forced nested95 solves whose estimated LP tableau exceeds this many bytes (0 disables)")
	jobsRunning := flag.Int("jobs-running", 2, "async job execution slots, separate from -max-inflight (0 disables the job API)")
	jobsQueued := flag.Int("jobs-queued", 256, "maximum queued async jobs across all classes")
	jobsPolicy := flag.String("jobs-policy", "sjf", "async job scheduling policy: fcfs | priority | sjf")
	jobsBudget := flag.String("jobs-budget", "", "per-class admission budgets, e.g. interactive=64,batch=128 (empty = unbounded)")
	costModelPath := flag.String("cost-model", "", "predicted-cost model JSON (empty = embedded model fitted from BENCH_core.json)")
	eventsRing := flag.Int("events-ring", 1024, "wide-event in-memory ring size behind /debug/events (0 disables the telemetry pipeline)")
	eventsFile := flag.String("events-file", "", "append every wide event as one JSON line to this file")
	tailSlow := flag.Duration("tail-slow", 250*time.Millisecond, "tail-sampling threshold: successful requests at or above it retain their trace (0 = errors/sheds only)")
	tailTraces := flag.Int("tail-traces", 64, "maximum retained tail-sampled traces")
	sloP99 := flag.Float64("slo-p99", 250, "latency objective in ms for the in-server SLO burn-rate tracker")
	sloMaxErr := flag.Float64("slo-max-error-rate", 0.01, "error budget (fraction) for the in-server SLO burn-rate tracker")
	drainWait := flag.Duration("drain-wait", 0, "on SIGTERM, report draining on /healthz for this long before closing the listener (lets a cluster router eject this replica first)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "activetimed: unknown -log format %q\n", *logFormat)
		os.Exit(2)
	}
	log := slog.New(handler)

	if _, err := jobs.PolicyByName(*jobsPolicy); err != nil {
		fmt.Fprintf(os.Stderr, "activetimed: %v\n", err)
		os.Exit(2)
	}
	budgets, err := jobs.ParseBudgets(*jobsBudget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "activetimed: %v\n", err)
		os.Exit(2)
	}
	var model *costmodel.Model
	if *costModelPath != "" {
		m, err := costmodel.Load(*costModelPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "activetimed: %v\n", err)
			os.Exit(2)
		}
		model = m
	}
	var eventSink *os.File
	if *eventsFile != "" {
		f, err := os.OpenFile(*eventsFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "activetimed: %v\n", err)
			os.Exit(2)
		}
		eventSink = f
		defer f.Close()
	}

	cfg := server.Config{
		DefaultWorkers:   *workers,
		MaxInFlight:      *maxInFlight,
		AdmissionWait:    *admissionWait,
		SolveTimeout:     *solveTimeout,
		CacheEntries:     *cacheEntries,
		CacheWarmBytes:   *cacheWarmBytes,
		MaxSolveMemBytes: *maxSolveMem,
		JobsMaxRunning:   *jobsRunning,
		JobsMaxQueued:    *jobsQueued,
		JobsPolicy:       *jobsPolicy,
		JobsBudgets:      budgets,
		CostModel:        model,
		EventRing:        *eventsRing,
		TailSlow:         *tailSlow,
		TraceRetain:      *tailTraces,
		SLOTarget:        obs.SLOConfig{LatencyObjectiveMS: *sloP99, ErrorBudget: *sloMaxErr},
	}
	if eventSink != nil {
		cfg.EventSink = eventSink
	}
	srv := server.New(log, cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen", "addr", *addr, "err", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(bound), 0o644); err != nil {
			log.Error("write port file", "path", *portFile, "err", err)
			os.Exit(1)
		}
	}
	log.Info("listening", "addr", bound, "workers", *workers,
		"max_inflight", *maxInFlight, "solve_timeout", solveTimeout.String(),
		"cache_entries", *cacheEntries,
		"jobs_running", *jobsRunning, "jobs_policy", *jobsPolicy)

	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Info("shutting down", "reason", "signal")
		if *drainWait > 0 {
			// Flip /healthz to "draining" (503) and keep serving while
			// the router's health prober notices and ejects us; only
			// then close the listener.
			srv.StartDraining()
			log.Info("draining", "wait", drainWait.String())
			time.Sleep(*drainWait)
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			log.Error("shutdown", "err", err)
			os.Exit(1)
		}
		// Drain the job queue after the listener: queued jobs shed,
		// running solves canceled, every job reaches a terminal state.
		if err := srv.Close(shutCtx); err != nil {
			log.Error("job queue close", "err", err)
			os.Exit(1)
		}
		log.Info("bye", "solves", srv.Registry().Solves())
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Error("serve", "err", err)
			os.Exit(1)
		}
	}
}
