package main

import (
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestDeltaSmoke is the warm-start smoke: build the real binary, boot
// it, solve a nested instance over real HTTP, re-solve it at a raised
// g and at the same g with an extra nested job, and require both
// near-misses to warm-start — on the response body, on the wide event,
// and in the /metrics warm counters. `make delta-smoke` runs exactly
// this test.
func TestDeltaSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "activetimed")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	portFile := filepath.Join(dir, "port")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-port-file", portFile)
	var logs strings.Builder
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var addr string
	for i := 0; i < 100; i++ {
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never wrote port file; logs:\n%s", logs.String())
	}

	post := func(body string) string {
		resp, err := http.Post("http://"+addr+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /solve: %v\nlogs:\n%s", err, logs.String())
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /solve: status %d: %s", resp.StatusCode, data)
		}
		return string(data)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	// Cold base solve.
	if body := post(`{"instance":{"g":2,"jobs":[{"p":2,"r":0,"d":6},{"p":1,"r":1,"d":3},{"p":1,"r":8,"d":10}]},"algorithm":"comb"}`); strings.Contains(body, `"warm_start":true`) {
		t.Fatalf("cold base claims warm_start: %s", body)
	}
	// Raised-g near-miss: must warm-start.
	if body := post(`{"instance":{"g":4,"jobs":[{"p":2,"r":0,"d":6},{"p":1,"r":1,"d":3},{"p":1,"r":8,"d":10}]},"algorithm":"comb"}`); !strings.Contains(body, `"warm_start":true`) || !strings.Contains(body, `"warm_kind":"raise_g"`) {
		t.Fatalf("raised-g solve did not warm-start: %s", body)
	}
	// Nested-superset near-miss at the original g: must warm-start.
	if body := post(`{"instance":{"g":2,"jobs":[{"p":2,"r":0,"d":6},{"p":1,"r":1,"d":3},{"p":1,"r":8,"d":10},{"p":1,"r":3,"d":6}]},"algorithm":"comb"}`); !strings.Contains(body, `"warm_start":true`) || !strings.Contains(body, `"warm_kind":"superset"`) {
		t.Fatalf("superset solve did not warm-start: %s", body)
	}

	// The wide events carry the warm fields.
	events := get("/debug/events")
	for _, want := range []string{`"warm_start":true`, `"warm_kind":"raise_g"`, `"warm_kind":"superset"`} {
		if !strings.Contains(events, want) {
			t.Errorf("wide events missing %s:\n%s", want, events)
		}
	}

	// The warm counters and cache gauges are live on /metrics.
	metricsBody := get("/metrics")
	validateExposition(t, metricsBody)
	for _, want := range []string{
		`activetime_warm_starts_total{kind="raise_g"} 1`,
		`activetime_warm_starts_total{kind="superset"} 1`,
		"activetime_warm_fallbacks_total 0",
		"activetime_cache_entries 3",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(metricsBody, "activetime_cache_warm_bytes 0\n") {
		t.Error("no warm state retained on cache entries")
	}
}
