package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	activetime "repro"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// maxRequestBody bounds /solve request bodies (instances are small;
// 8 MiB leaves room for very large job sets).
const maxRequestBody = 8 << 20

// server is the long-running solver service: request handling,
// structured logs, and the process-lifetime metrics registry behind
// /metrics.
type server struct {
	reg            *metrics.Registry
	log            *slog.Logger
	defaultWorkers int
	reqSeq         atomic.Int64
}

func newServer(log *slog.Logger, defaultWorkers int) *server {
	if log == nil {
		log = slog.Default()
	}
	if defaultWorkers < 1 {
		defaultWorkers = 1
	}
	return &server{reg: metrics.NewRegistry(), log: log, defaultWorkers: defaultWorkers}
}

// handler returns the service mux: /solve, /healthz, /metrics and the
// net/http/pprof endpoints under /debug/pprof/.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// solveRequest is the /solve request body. Instance uses the same
// JSON shape as the CLI instance files: {"g": 2, "jobs": [{"p","r","d"}]}.
type solveRequest struct {
	Instance json.RawMessage `json:"instance"`
	// Algorithm defaults to nested95.
	Algorithm string `json:"algorithm,omitempty"`
	// Nested95 options (ignored by other algorithms).
	ExactLP    bool `json:"exact_lp,omitempty"`
	Minimalize bool `json:"minimalize,omitempty"`
	Compact    bool `json:"compact,omitempty"`
	Workers    int  `json:"workers,omitempty"`
	// IncludeSchedule returns the full schedule in the response.
	IncludeSchedule bool `json:"include_schedule,omitempty"`
	// IncludeTrace runs the solve under a request-scoped span tracer
	// and returns the Chrome trace-event JSON inline.
	IncludeTrace bool `json:"include_trace,omitempty"`
}

// solveResponse is the /solve response body.
type solveResponse struct {
	RequestID      string             `json:"request_id"`
	Algorithm      string             `json:"algorithm"`
	Jobs           int                `json:"jobs"`
	ActiveSlots    int64              `json:"active_slots"`
	LPBound        float64            `json:"lp_bound,omitempty"`
	CertifiedRatio float64            `json:"certified_ratio,omitempty"`
	ElapsedMS      float64            `json:"elapsed_ms"`
	Stats          *metrics.Stats     `json:"stats,omitempty"`
	Schedule       json.RawMessage    `json:"schedule,omitempty"`
	Trace          *trace.ChromeTrace `json:"trace,omitempty"`
}

// errorResponse is the uniform error body for every non-2xx outcome.
type errorResponse struct {
	RequestID string `json:"request_id"`
	Error     string `json:"error"`
}

func (s *server) nextRequestID() string {
	return fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
}

func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		s.log.Error("encode response", "err", err)
	}
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextRequestID()
	log := s.log.With("request_id", reqID)
	if r.Method != http.MethodPost {
		log.Warn("solve rejected", "reason", "method", "method", r.Method)
		s.writeJSON(w, http.StatusMethodNotAllowed, errorResponse{reqID, "POST required"})
		return
	}

	var req solveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(&req); err != nil {
		log.Warn("solve rejected", "reason", "bad_json", "err", err)
		s.writeJSON(w, http.StatusBadRequest, errorResponse{reqID, "decode request: " + err.Error()})
		return
	}
	if len(req.Instance) == 0 {
		log.Warn("solve rejected", "reason", "no_instance")
		s.writeJSON(w, http.StatusBadRequest, errorResponse{reqID, "missing instance"})
		return
	}
	in, err := instance.ReadJSON(bytes.NewReader(req.Instance))
	if err != nil {
		log.Warn("solve rejected", "reason", "invalid_instance", "err", err)
		s.writeJSON(w, http.StatusBadRequest, errorResponse{reqID, "invalid instance: " + err.Error()})
		return
	}

	alg := activetime.Algorithm(req.Algorithm)
	if req.Algorithm == "" {
		alg = activetime.AlgNested95
	}
	workers := req.Workers
	if workers < 1 {
		workers = s.defaultWorkers
	}
	var tr *trace.Tracer
	if req.IncludeTrace {
		tr = trace.New()
	}
	log.Info("solve start", "algorithm", string(alg), "jobs", in.N(), "g", in.G, "workers", workers)

	s.reg.SolveStarted()
	start := time.Now()
	var res *activetime.Result
	if alg == activetime.AlgNested95 {
		res, err = activetime.SolveNested95(in, activetime.SolveOptions{
			ExactLP:    req.ExactLP,
			Minimalize: req.Minimalize,
			Compact:    req.Compact,
			Workers:    workers,
			Trace:      tr,
		})
	} else {
		res, err = activetime.SolveTraced(in, alg, tr)
	}
	elapsed := time.Since(start)
	var stats *metrics.Stats
	if res != nil {
		stats = res.Stats
	}
	s.reg.ObserveSolve(stats, elapsed, err)

	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, instance.ErrInvalid) {
			status = http.StatusBadRequest
		}
		log.Warn("solve failed", "err", err, "elapsed_ms", float64(elapsed.Microseconds())/1e3)
		s.writeJSON(w, status, errorResponse{reqID, err.Error()})
		return
	}

	out := solveResponse{
		RequestID:      reqID,
		Algorithm:      string(res.Algorithm),
		Jobs:           in.N(),
		ActiveSlots:    res.ActiveSlots,
		LPBound:        res.LPLowerBound,
		CertifiedRatio: res.CertifiedRatio,
		ElapsedMS:      float64(elapsed.Microseconds()) / 1e3,
		Stats:          res.Stats,
	}
	if req.IncludeSchedule {
		var buf bytes.Buffer
		if err := res.Schedule.WriteJSON(&buf); err != nil {
			log.Error("encode schedule", "err", err)
			s.writeJSON(w, http.StatusInternalServerError, errorResponse{reqID, "encode schedule: " + err.Error()})
			return
		}
		out.Schedule = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
	}
	if tr != nil {
		out.Trace = &trace.ChromeTrace{TraceEvents: tr.ChromeEvents(), DisplayUnit: "ms"}
	}
	log.Info("solve done",
		"algorithm", string(res.Algorithm),
		"active_slots", res.ActiveSlots,
		"elapsed_ms", out.ElapsedMS)
	s.writeJSON(w, http.StatusOK, out)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"solves": s.reg.Solves(),
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.log.Error("write metrics", "err", err)
	}
}
