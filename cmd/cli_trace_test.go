package cmd_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// runSplit executes bin with args and returns stdout and stderr
// separately, plus the exit code (-1 if the process failed to start).
func runSplit(t *testing.T, bin string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var outBuf, errBuf bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &outBuf
	cmd.Stderr = &errBuf
	err := cmd.Run()
	code = 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("run %s: %v", bin, err)
		}
		code = ee.ExitCode()
	}
	return outBuf.String(), errBuf.String(), code
}

// TestCLIStructuredErrors asserts that activetime reports fatal errors
// as exactly one parseable JSON line on stderr with a non-zero exit
// code — never a bare panic or log dump.
func TestCLIStructuredErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	activetime := buildTool(t, dir, "activetime")

	badJSON := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badJSON, []byte(`{"g": 2, "jobs": [`), 0o644); err != nil {
		t.Fatal(err)
	}
	invalidInst := filepath.Join(dir, "invalid.json")
	if err := os.WriteFile(invalidInst, []byte(`{"g":0,"jobs":[{"p":1,"r":0,"d":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	infeasible := filepath.Join(dir, "infeasible.json")
	if err := os.WriteFile(infeasible,
		[]byte(`{"g":1,"jobs":[{"p":3,"r":0,"d":3},{"p":3,"r":0,"d":3}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		kind string
	}{
		{"unreadable file", []string{"-in", filepath.Join(dir, "missing.json")}, "load_instance"},
		{"malformed json", []string{"-in", badJSON}, "load_instance"},
		{"invalid instance", []string{"-in", invalidInst}, "load_instance"},
		{"infeasible instance", []string{"-in", infeasible}, "solve"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := runSplit(t, activetime, tc.args...)
			if code != 1 {
				t.Fatalf("exit code %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
			}
			lines := strings.Split(strings.TrimSpace(stderr), "\n")
			if len(lines) != 1 {
				t.Fatalf("want exactly one stderr line, got %d:\n%s", len(lines), stderr)
			}
			var e struct {
				Tool   string `json:"tool"`
				Error  string `json:"error"`
				Detail string `json:"detail"`
			}
			if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
				t.Fatalf("stderr is not a JSON line: %v\n%s", err, lines[0])
			}
			if e.Tool != "activetime" || e.Error != tc.kind || e.Detail == "" {
				t.Fatalf("unexpected error shape: %+v (want error=%q)", e, tc.kind)
			}
		})
	}
}

// TestCLITraceExport runs activetime with -trace and checks the output
// file is Chrome trace-event JSON containing the solve and stage spans.
func TestCLITraceExport(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	atgen := buildTool(t, dir, "atgen")
	activetime := buildTool(t, dir, "activetime")

	instPath := filepath.Join(dir, "inst.json")
	out, err := run(t, atgen, "-kind", "laminar", "-n", "10", "-g", "3", "-seed", "7")
	if err != nil {
		t.Fatalf("atgen: %v\n%s", err, out)
	}
	if err := os.WriteFile(instPath, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}

	tracePath := filepath.Join(dir, "trace.json")
	stdout, stderr, code := runSplit(t, activetime, "-in", instPath, "-trace", tracePath)
	if code != 0 {
		t.Fatalf("exit code %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "active slots:") {
		t.Fatalf("normal output missing:\n%s", stdout)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatalf("-trace produced no file: %v", err)
	}
	defer f.Close()
	ct, err := trace.ParseChromeTrace(f)
	if err != nil {
		t.Fatalf("trace file is not Chrome trace-event JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range ct.TraceEvents {
		seen[e.Name] = true
	}
	for _, want := range []string{"solve", "forest_solve", "tree_build", "lp_solve", "round", "place"} {
		if !seen[want] {
			t.Errorf("trace missing %q span; have %v", want, seen)
		}
	}
}
