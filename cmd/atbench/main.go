// Command atbench benchmarks the core solver hot path over fixed-seed
// instance families and emits a machine-readable baseline
// (BENCH_core.json): ns/op, allocs/op, bytes/op per family plus the
// deterministic operation counters (simplex pivots, Dinic ops) for the
// same instances. Timings are machine-dependent; counters are exact
// and must be byte-stable across runs for a fixed binary.
//
// Usage:
//
//	atbench [-out BENCH_core.json] [-runs 5] [-budget 300ms] [-quick]
//	atbench -compare old.json new.json [-fail-over 1.15]
//	atbench -fit [-in BENCH_core.json] [-fit-out internal/costmodel/costmodel.json]
//
// The -fit mode regenerates the predicted-cost model: it reloads the
// committed baseline, rebuilds the frozen benchmark instances to
// derive each family's mean jobs and nesting depth, least-squares
// fits ns = C0 + C1·jobs·depth per cost family, and writes the
// coefficients consumed (via go:embed) by internal/costmodel.
//
// The -compare mode is the run-comparison tool: it prints a per-family
// table of ns/op, allocs/op and counter deltas between two reports and
// (with -fail-over R) exits 1 when any family's median ns/op regressed
// by more than the factor R. Everything is stdlib-only so the tool can
// run in any CI image that has the Go toolchain.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	activetime "repro"
	"repro/internal/comb"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/gapfam"
	"repro/internal/gen"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/solvecache"
)

const schema = "activetime-bench-core/v1"

// family is a named, fixed set of instances solved as one benchmark op.
// algorithm selects the solver: "" is the core 9/5 LP pipeline, "comb"
// the lazy-activation combinatorial solver — the path the auto router
// uses for shapes (deep chains, huge forests) the LP cannot afford.
type family struct {
	name      string
	algorithm string
	// delta turns the family into a warm-start benchmark: each instance
	// is solved cold once (retaining warm state) and the timed op
	// resumes that state for a derived near-miss — "raise_g" bumps g,
	// "grow10" adds a unit job nested into every 10th window.
	delta     string
	instances []*instance.Instance
}

// FamilyResult is one family's measurements. Counters come from a
// single instrumented solve of every instance in the family and are
// deterministic; the timing fields are medians over -runs repetitions.
type FamilyResult struct {
	Name        string `json:"name"`
	Algorithm   string `json:"algorithm,omitempty"`
	Delta       string `json:"delta,omitempty"`
	Instances   int    `json:"instances"`
	Jobs        int    `json:"jobs"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// ColdNsPerOp is the delta families' comparison column: the median
	// cost of solving the same near-miss instances cold, with no
	// retained state. The warm speedup is ColdNsPerOp / NsPerOp.
	ColdNsPerOp int64                `json:"cold_ns_per_op,omitempty"`
	RunsNsPerOp []int64              `json:"runs_ns_per_op"`
	Counters    metrics.CounterStats `json:"counters"`
}

// Report is the whole benchmark baseline.
type Report struct {
	Schema    string         `json:"schema"`
	GoVersion string         `json:"go_version"`
	Budget    string         `json:"budget_per_run"`
	Runs      int            `json:"runs"`
	Families  []FamilyResult `json:"families"`
}

func main() {
	var (
		out      = flag.String("out", "BENCH_core.json", "output file for the JSON report")
		runs     = flag.Int("runs", 5, "timed repetitions per family (median is reported)")
		budget   = flag.Duration("budget", 300*time.Millisecond, "minimum measuring time per repetition")
		quick    = flag.Bool("quick", false, "smoke mode: one short repetition per family")
		compare  = flag.Bool("compare", false, "compare two existing reports instead of benchmarking")
		failOver = flag.Float64("fail-over", 0, "with -compare: exit 1 when any family's ns/op regressed by more than this factor (0 disables)")
		checkCtr = flag.Bool("check-counters", false, "with -compare: exit 1 when any family's deterministic counters differ")
		fit      = flag.Bool("fit", false, "fit the predicted-cost model from an existing baseline instead of benchmarking")
		fitIn    = flag.String("in", "BENCH_core.json", "with -fit: baseline report to fit from")
		fitOut   = flag.String("fit-out", "internal/costmodel/costmodel.json", "with -fit: output path for the fitted coefficients")
	)
	flag.Parse()

	if *fit {
		if err := runFit(*fitIn, *fitOut); err != nil {
			fmt.Fprintln(os.Stderr, "atbench:", err)
			os.Exit(1)
		}
		return
	}
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: atbench -compare old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *failOver, *checkCtr))
	}
	if *quick {
		*runs = 1
		*budget = 20 * time.Millisecond
	}
	if err := runBench(*out, *runs, *budget); err != nil {
		fmt.Fprintln(os.Stderr, "atbench:", err)
		os.Exit(1)
	}
}

// families builds the fixed-seed benchmark suite. Seeds and parameters
// are frozen: changing them invalidates every committed baseline.
func families() []family {
	nested := func(name string, count, n int, g int64, seed int64) family {
		rng := rand.New(rand.NewSource(seed))
		ins := make([]*instance.Instance, count)
		for i := range ins {
			ins[i] = gen.RandomLaminar(rng, gen.DefaultLaminar(n, g))
		}
		return family{name: name, instances: ins}
	}
	unit := func(name string, count, n int, g int64, seed int64) family {
		rng := rand.New(rand.NewSource(seed))
		ins := make([]*instance.Instance, count)
		for i := range ins {
			ins[i] = gen.RandomUnitLaminar(rng, gen.DefaultLaminar(n, g))
		}
		return family{name: name, instances: ins}
	}
	nestedLarge := nested("nested-large", 4, 64, 4, 303)
	forest100k := []*instance.Instance{gen.NestedForest(10, 5, 4, 30, 4)}
	return []family{
		nested("nested-small", 8, 12, 3, 101),
		nested("nested-medium", 6, 32, 3, 202),
		nestedLarge,
		unit("unit-nested", 6, 32, 2, 404),
		{name: "gap-worstcase", instances: []*instance.Instance{
			gapfam.NaturalGap2(6),
			gapfam.Nested32(6),
			gapfam.Staircase(6, 2),
			gapfam.PinnedComb(8, 3),
		}},
		// deep-chain is the depth⁴ repro shape on the solver that fixes
		// it: a 900-level chain the LP cannot touch (its estimated
		// tableau is terabytes; see EstimateLP) solved combinatorially.
		// deep-chain-lp is the deepest chain the LP path still affords,
		// kept on the LP so the refit captures its superlinear
		// depth-growth (the jobs·depth³ feature) instead of
		// underpredicting deep instances with a linear fit.
		{name: "deep-chain", algorithm: "comb", instances: []*instance.Instance{
			gen.NestedChain(900, 2, 1),
		}},
		{name: "deep-chain-lp", instances: []*instance.Instance{
			gen.NestedChain(48, 2, 1),
		}},
		// nested-100k / nested-1m exercise the combinatorial solver at
		// the scales the auto router sends it: ~10⁵- and ~10⁶-job
		// laminar forests.
		{name: "nested-100k", algorithm: "comb", instances: forest100k},
		{name: "nested-1m", algorithm: "comb", instances: []*instance.Instance{
			gen.NestedForest(25, 6, 4, 30, 4),
		}},
		// Delta families time the warm-start resume paths against cold
		// re-solves of the same near-miss (see benchDeltaFamily):
		// raised g on the LP and combinatorial paths, and a 10% nested
		// job growth on the combinatorial path.
		// The grow-100k base is a slacker forest (3 spare units per node
		// vs the benchmark forest's 2): 10% job growth must stay
		// feasible on top of the frozen base placement.
		{name: "delta-raise-g", delta: "raise_g", instances: nestedLarge.instances},
		{name: "delta-raise-g-100k", algorithm: "comb", delta: "raise_g", instances: forest100k},
		{name: "delta-grow-10pct", algorithm: "comb", delta: "grow10", instances: nestedLarge.instances},
		{name: "delta-grow-10pct-100k", algorithm: "comb", delta: "grow10", instances: []*instance.Instance{
			gen.NestedForest(12, 5, 4, 25, 4),
		}},
	}
}

func runBench(out string, runs int, budget time.Duration) error {
	rep := Report{
		Schema:    schema,
		GoVersion: runtime.Version(),
		Budget:    budget.String(),
		Runs:      runs,
	}
	for _, f := range families() {
		fr, err := benchFamily(f, runs, budget)
		if err != nil {
			return fmt.Errorf("family %s: %w", f.name, err)
		}
		rep.Families = append(rep.Families, fr)
		warm := ""
		if fr.ColdNsPerOp > 0 && fr.NsPerOp > 0 {
			warm = fmt.Sprintf("  warm-speedup=%.1fx", float64(fr.ColdNsPerOp)/float64(fr.NsPerOp))
		}
		fmt.Printf("%-22s %12d ns/op %8d allocs/op %10d B/op  pivots=%d dinic_bfs=%d%s\n",
			fr.Name, fr.NsPerOp, fr.AllocsPerOp, fr.BytesPerOp,
			fr.Counters.SimplexPivots, fr.Counters.DinicBFSRounds, warm)
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

func benchFamily(f family, runs int, budget time.Duration) (FamilyResult, error) {
	if f.delta != "" {
		return benchDeltaFamily(f, runs, budget)
	}
	fr := FamilyResult{Name: f.name, Algorithm: f.algorithm, Instances: len(f.instances)}
	for _, in := range f.instances {
		fr.Jobs += in.N()
	}
	solveAll := func(rec *metrics.Recorder) error {
		for _, in := range f.instances {
			var err error
			if f.algorithm == "comb" {
				_, _, err = comb.SolveContext(context.Background(), in, comb.Options{Metrics: rec})
			} else {
				_, _, err = core.SolveWithOptions(in, core.Options{Workers: 1, Metrics: rec})
			}
			if err != nil {
				return err
			}
		}
		return nil
	}

	// Deterministic counters from one instrumented pass.
	rec := new(metrics.Recorder)
	if err := solveAll(rec); err != nil {
		return fr, err
	}
	fr.Counters = rec.Snapshot().Counters

	var failed error
	op := func() {
		if err := solveAll(nil); err != nil && failed == nil {
			failed = err
		}
	}
	for r := 0; r < runs; r++ {
		ns, allocs, bytes := measure(budget, op)
		if failed != nil {
			return fr, failed
		}
		fr.RunsNsPerOp = append(fr.RunsNsPerOp, ns)
		// allocs/bytes are deterministic per op; keep the last run's.
		fr.AllocsPerOp, fr.BytesPerOp = allocs, bytes
	}
	fr.NsPerOp = median(fr.RunsNsPerOp)
	return fr, nil
}

// deriveDelta builds the near-miss instance a delta family resumes
// into, from a canonical base. The construction is deterministic so
// the warm-path counters stay byte-stable.
func deriveDelta(kind string, base *instance.Instance) (*instance.Instance, error) {
	switch kind {
	case "raise_g":
		// Same jobs (already canonical), capacity bumped by 2.
		d := base.Clone()
		d.G += 2
		return d, nil
	case "grow10":
		// Every 10th job spawns a unit job at its component's root
		// window: ~10% more jobs, trivially nested inside the existing
		// laminar forest and placeable in the forest's residual slack.
		// (Duplicating inner windows instead can be infeasible: the
		// cold solve concentrates parent jobs into leaf slots, so tight
		// inner windows end up completely full.)
		type span struct{ lo, hi int64 }
		idx := make([]int, len(base.Jobs))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			ja, jb := base.Jobs[idx[a]], base.Jobs[idx[b]]
			if ja.Release != jb.Release {
				return ja.Release < jb.Release
			}
			return ja.Deadline > jb.Deadline
		})
		var roots []span
		for _, i := range idx {
			j := base.Jobs[i]
			if len(roots) == 0 || j.Release >= roots[len(roots)-1].hi {
				roots = append(roots, span{j.Release, j.Deadline})
			}
		}
		jobs := append([]instance.Job(nil), base.Jobs...)
		for i := 0; i < len(base.Jobs); i += 10 {
			j := base.Jobs[i]
			k := sort.Search(len(roots), func(k int) bool { return roots[k].hi > j.Release })
			jobs = append(jobs, instance.Job{Processing: 1, Release: roots[k].lo, Deadline: roots[k].hi})
		}
		d, err := instance.New(base.G, jobs)
		if err != nil {
			return nil, err
		}
		return d.Permute(solvecache.CanonicalOrder(d)), nil
	default:
		return nil, fmt.Errorf("unknown delta kind %q", kind)
	}
}

// benchDeltaFamily measures the warm-start resume paths. Outside the
// timed region it solves each canonical base instance cold with warm
// capture, derives the near-miss delta, and classifies it; the timed
// op is SolveWarmCtx resuming the retained state (immutable, so every
// repetition resumes the same capture). ColdNsPerOp measures cold
// solves of the same delta instances for the warm-vs-cold comparison.
// Any warm failure aborts the family: the resume paths must never
// silently fall back under a frozen benchmark delta.
func benchDeltaFamily(f family, runs int, budget time.Duration) (FamilyResult, error) {
	fr := FamilyResult{Name: f.name, Algorithm: f.algorithm, Delta: f.delta, Instances: len(f.instances)}
	type resume struct {
		in   *instance.Instance
		warm *activetime.WarmState
		d    activetime.Delta
	}
	prep := make([]resume, 0, len(f.instances))
	for _, raw := range f.instances {
		base := raw.Permute(solvecache.CanonicalOrder(raw))
		opts := activetime.SolveOptions{Workers: 1, CaptureWarm: true}
		var res *activetime.Result
		var err error
		if f.algorithm == "comb" {
			res, err = activetime.SolveCombinatorial(base, opts)
		} else {
			res, err = activetime.SolveNested95(base, opts)
		}
		if err != nil {
			return fr, fmt.Errorf("base solve: %w", err)
		}
		if res.Warm == nil {
			return fr, fmt.Errorf("base solve retained no warm state")
		}
		din, err := deriveDelta(f.delta, base)
		if err != nil {
			return fr, err
		}
		d := activetime.ClassifyDelta(base, din)
		if d.Kind == activetime.WarmNone {
			return fr, fmt.Errorf("derived delta did not classify as warmable")
		}
		fr.Jobs += din.N()
		prep = append(prep, resume{in: din, warm: res.Warm, d: d})
	}

	// Deterministic counters from one instrumented warm pass.
	rec := new(metrics.Recorder)
	for _, p := range prep {
		if _, err := activetime.SolveWarmCtx(context.Background(), p.in, p.warm, p.d,
			activetime.SolveOptions{Workers: 1, Metrics: rec}); err != nil {
			return fr, fmt.Errorf("warm resume: %w", err)
		}
	}
	fr.Counters = rec.Snapshot().Counters

	var failed error
	warmOp := func() {
		for _, p := range prep {
			if _, err := activetime.SolveWarmCtx(context.Background(), p.in, p.warm, p.d,
				activetime.SolveOptions{Workers: 1}); err != nil && failed == nil {
				failed = err
			}
		}
	}
	coldOp := func() {
		for _, p := range prep {
			var err error
			if f.algorithm == "comb" {
				_, _, err = comb.SolveContext(context.Background(), p.in, comb.Options{})
			} else {
				_, _, err = core.SolveWithOptions(p.in, core.Options{Workers: 1})
			}
			if err != nil && failed == nil {
				failed = err
			}
		}
	}
	var coldRuns []int64
	for r := 0; r < runs; r++ {
		ns, allocs, bytes := measure(budget, warmOp)
		coldNs, _, _ := measure(budget, coldOp)
		if failed != nil {
			return fr, failed
		}
		fr.RunsNsPerOp = append(fr.RunsNsPerOp, ns)
		coldRuns = append(coldRuns, coldNs)
		fr.AllocsPerOp, fr.BytesPerOp = allocs, bytes
	}
	fr.NsPerOp = median(fr.RunsNsPerOp)
	fr.ColdNsPerOp = median(coldRuns)
	return fr, nil
}

// measure times fn until the budget elapses and reports per-op cost.
// It is a minimal stand-in for testing.B that allows a configurable
// budget without the testing flag machinery.
func measure(budget time.Duration, fn func()) (nsPerOp, allocsPerOp, bytesPerOp int64) {
	fn() // warm caches and pools before the timed region
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var iters int64
	for time.Since(start) < budget {
		fn()
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return elapsed.Nanoseconds() / iters,
		int64(m1.Mallocs-m0.Mallocs) / iters,
		int64(m1.TotalAlloc-m0.TotalAlloc) / iters
}

func median(v []int64) int64 {
	s := append([]int64(nil), v...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	return s[len(s)/2]
}

// --- comparison mode ---

func runCompare(oldPath, newPath string, failOver float64, checkCounters bool) int {
	oldRep, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atbench:", err)
		return 2
	}
	newRep, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atbench:", err)
		return 2
	}
	oldBy := map[string]FamilyResult{}
	for _, f := range oldRep.Families {
		oldBy[f.Name] = f
	}
	fmt.Printf("%-16s %14s %14s %8s %10s %10s %8s\n",
		"family", "old ns/op", "new ns/op", "speedup", "old allocs", "new allocs", "Δallocs")
	exit := 0
	for _, nf := range newRep.Families {
		of, ok := oldBy[nf.Name]
		if !ok {
			fmt.Printf("%-16s %14s (new family)\n", nf.Name, "-")
			continue
		}
		speed := float64(of.NsPerOp) / float64(nf.NsPerOp)
		dAlloc := "0%"
		if of.AllocsPerOp > 0 {
			dAlloc = fmt.Sprintf("%+.1f%%", 100*float64(nf.AllocsPerOp-of.AllocsPerOp)/float64(of.AllocsPerOp))
		}
		flag := ""
		if failOver > 0 && float64(nf.NsPerOp) > float64(of.NsPerOp)*failOver {
			flag = "  REGRESSION"
			exit = 1
		}
		fmt.Printf("%-16s %14d %14d %7.2fx %10d %10d %8s%s\n",
			nf.Name, of.NsPerOp, nf.NsPerOp, speed, of.AllocsPerOp, nf.AllocsPerOp, dAlloc, flag)
		if of.Counters != nf.Counters {
			fmt.Printf("%-16s   counters changed: old %+v\n%-16s                     new %+v\n",
				"", of.Counters, "", nf.Counters)
			if checkCounters {
				exit = 1
			}
		}
	}
	return exit
}

// --- cost-model fitting ---

// costRowOf maps a benchmark family to the cost-model row (family,
// algorithm, feature) its measurements inform. The gap worst-case
// constructions stand in for the general family: they are the hardest
// shapes the benchmark suite contains and give the general path a
// pessimistic (safe-side) coefficient. The per-algorithm rows are
// keyed to the default cost family (laminar) so the fallback chain —
// (family, alg) → (laminar, alg) — serves every nested family: the
// deep LP chain fits nested95's jobs·depth³ row (the fix for the
// linear fit underpredicting deep chains), and the combinatorial
// families fit comb's depth-insensitive jobs row.
func costRowOf(benchFamily string) (fam, alg, feature string) {
	switch benchFamily {
	case "nested-small", "nested-medium", "nested-large":
		return costmodel.FamilyLaminar, "", ""
	case "unit-nested":
		return costmodel.FamilyUnit, "", ""
	case "gap-worstcase":
		return costmodel.FamilyGeneral, "", ""
	case "deep-chain-lp":
		return costmodel.FamilyLaminar, "nested95", costmodel.FeatureJobsDepth3
	case "deep-chain", "nested-100k", "nested-1m":
		return costmodel.FamilyLaminar, "comb", costmodel.FeatureJobs
	default:
		// Delta families measure resumes, not cold solves; the cold
		// model must not fit on them (warm costs go through
		// Model.PredictWarmNS instead).
		return "", "", ""
	}
}

// runFit rebuilds the frozen benchmark families, pairs each with its
// measured ns/op from the baseline report, and writes the fitted
// costmodel coefficients.
func runFit(inPath, outPath string) error {
	rep, err := load(inPath)
	if err != nil {
		return err
	}
	nsByName := map[string]FamilyResult{}
	for _, f := range rep.Families {
		nsByName[f.Name] = f
	}
	var samples []costmodel.Sample
	for _, f := range families() {
		fam, alg, feature := costRowOf(f.name)
		if fam == "" {
			continue
		}
		fr, ok := nsByName[f.name]
		if !ok {
			return fmt.Errorf("baseline %s has no family %q (regenerate with make bench-core)", inPath, f.name)
		}
		// One op solves every instance in the family; divide down to the
		// per-instance mean and pair it with the mean jobs and depth of
		// the actual frozen instances.
		var jobs, depth float64
		for _, in := range f.instances {
			jobs += float64(in.N())
			depth += float64(costmodel.Depth(in))
		}
		k := float64(len(f.instances))
		samples = append(samples, costmodel.Sample{
			Family:    fam,
			Algorithm: alg,
			Feature:   feature,
			Jobs:      jobs / k,
			Depth:     depth / k,
			NS:        float64(fr.NsPerOp) / k,
		})
	}
	model, err := costmodel.Fit(samples, inPath)
	if err != nil {
		return err
	}
	if err := model.WriteFile(outPath); err != nil {
		return err
	}
	for _, c := range model.Families {
		feature := c.Feature
		if feature == "" {
			feature = costmodel.FeatureJobsDepth
		}
		row := c.Family
		if c.Algorithm != "" {
			row += "/" + c.Algorithm
		}
		fmt.Printf("%-18s c0=%.0f ns  c1=%.2f ns/%s  points=%d\n", row, c.C0, c.C1, feature, c.Points)
	}
	fmt.Println("wrote", outPath)
	return nil
}

func load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, schema)
	}
	return &r, nil
}
