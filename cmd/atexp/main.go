// Command atexp runs the paper-reproduction experiments (E1–E17) and
// prints their tables; EXPERIMENTS.md is generated from this output.
//
// Usage:
//
//	atexp [-quick] [-trials N] [-seed S] [-workers W] [-only E1,E3]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use the small parameter grids")
	trials := flag.Int("trials", 0, "override trials per cell (0 = default)")
	seed := flag.Int64("seed", 1, "base random seed")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	asCSV := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	cfg.Seed = *seed
	cfg.Workers = *workers

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	failed := false
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		tbl, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			failed = true
			continue
		}
		tbl.Note("elapsed: %s", time.Since(start).Round(time.Millisecond))
		if *asCSV {
			tbl.FprintCSV(os.Stdout)
		} else {
			tbl.Fprint(os.Stdout)
		}
	}
	if failed {
		os.Exit(1)
	}
}
