package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestClusterSmoke is the full fleet smoke: build the real activetimed
// and atcluster binaries, boot three replicas plus the router over real
// HTTP, verify cache-affinity routing pins an instance to one replica,
// SIGTERM a replica and watch the router eject it mid-traffic via the
// draining handshake, then shut the router down cleanly.
// `make cluster-smoke` runs exactly this test.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	serverBin := filepath.Join(dir, "activetimed")
	routerBin := filepath.Join(dir, "atcluster")
	if out, err := exec.Command("go", "build", "-o", serverBin, "../activetimed").CombinedOutput(); err != nil {
		t.Fatalf("build activetimed: %v\n%s", err, out)
	}
	if out, err := exec.Command("go", "build", "-o", routerBin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build atcluster: %v\n%s", err, out)
	}

	waitPort := func(path, what string, logs *strings.Builder) string {
		t.Helper()
		for i := 0; i < 150; i++ {
			if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
				return string(b)
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("%s never wrote its port file; logs:\n%s", what, logs.String())
		return ""
	}

	// Three replicas. -drain-wait keeps each serving (and advertising
	// draining) long enough for the router's fast probes to eject it
	// before the listener closes.
	var replicaAddrs []string
	replicas := make([]*exec.Cmd, 3)
	replicaLogs := make([]*strings.Builder, 3)
	for i := range replicas {
		portFile := filepath.Join(dir, fmt.Sprintf("replica-%d.port", i))
		cmd := exec.Command(serverBin,
			"-addr", "127.0.0.1:0", "-port-file", portFile,
			"-cache-entries", "64", "-drain-wait", "1500ms")
		logs := &strings.Builder{}
		cmd.Stderr = logs
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		replicas[i] = cmd
		replicaLogs[i] = logs
		defer cmd.Process.Kill()
		replicaAddrs = append(replicaAddrs, "http://"+waitPort(portFile, fmt.Sprintf("replica %d", i), logs))
	}

	routerPort := filepath.Join(dir, "router.port")
	routerLogs := &strings.Builder{}
	router := exec.Command(routerBin,
		"-addr", "127.0.0.1:0", "-port-file", routerPort,
		"-backends", strings.Join(replicaAddrs, ","),
		"-policy", "affinity",
		"-probe-interval", "100ms", "-probe-timeout", "300ms",
		"-eject-after", "2", "-readmit-after", "2")
	router.Stderr = routerLogs
	if err := router.Start(); err != nil {
		t.Fatal(err)
	}
	defer router.Process.Kill()
	base := "http://" + waitPort(routerPort, "router", routerLogs)

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v\nrouter logs:\n%s", path, err, routerLogs.String())
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}
	if code, body := get("/healthz"); code != http.StatusOK {
		t.Fatalf("router healthz: %d %s", code, body)
	}

	// Affinity: the same instance, under two job orders, always lands
	// on one replica; the fleet serves one miss then cache hits.
	perms := []string{
		`{"instance":{"g":2,"jobs":[{"p":2,"r":0,"d":6},{"p":1,"r":0,"d":3}]}}`,
		`{"instance":{"g":2,"jobs":[{"p":1,"r":0,"d":3},{"p":2,"r":0,"d":6}]}}`,
	}
	solve := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(base+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /solve: %v\nrouter logs:\n%s", err, routerLogs.String())
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, data
	}
	var servedBy string
	for round := 0; round < 3; round++ {
		for i, p := range perms {
			resp, data := solve(p)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("solve: %d %s", resp.StatusCode, data)
			}
			by := resp.Header.Get("X-Served-By")
			if servedBy == "" {
				servedBy = by
			} else if by != servedBy {
				t.Fatalf("affinity broke: instance moved from %s to %s", servedBy, by)
			}
			cached := strings.Contains(string(data), `"cached":true`)
			first := round == 0 && i == 0
			if first && cached {
				t.Fatalf("cold solve claims cached: %s", data)
			}
			if !first && !cached {
				t.Fatalf("warm solve (round %d) missed the cache on %s: %s", round, by, data)
			}
		}
	}

	// The aggregated exposition shows the fleet totals: 1 miss, 5 hits.
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(string(body), "activetime_cache_misses_total 1") ||
		!strings.Contains(string(body), "activetime_cache_hits_total 5") {
		t.Fatalf("aggregated metrics wrong (code %d):\n%s", code, body)
	}

	// Kill (SIGTERM) the replica that owns the hot instance. The drain
	// window flips its /healthz to draining; the router must eject it
	// and keep serving the instance from a surviving replica.
	idx := -1
	for i, addr := range replicaAddrs {
		if servedBy == fmt.Sprintf("replica-%d", i) {
			_ = addr
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("unknown serving replica %q", servedBy)
	}
	if err := replicas[idx].Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	ejected := false
	for i := 0; i < 100 && !ejected; i++ {
		_, body := get("/cluster/status")
		var st struct {
			Replicas []struct {
				Name      string `json:"name"`
				Healthy   bool   `json:"healthy"`
				Ejections int64  `json:"ejections"`
			} `json:"replicas"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("status body: %v: %s", err, body)
		}
		for _, r := range st.Replicas {
			if r.Name == servedBy && !r.Healthy && r.Ejections >= 1 {
				ejected = true
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !ejected {
		t.Fatalf("router never ejected %s after SIGTERM; router logs:\n%s\nreplica logs:\n%s",
			servedBy, routerLogs.String(), replicaLogs[idx].String())
	}

	// Same instance, fleet degraded: must be re-solved by a survivor.
	resp, data := solve(perms[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve after ejection: %d %s", resp.StatusCode, data)
	}
	if by := resp.Header.Get("X-Served-By"); by == servedBy {
		t.Fatalf("request routed to ejected replica %s", by)
	}

	// The ejected replica must have exited cleanly (drain, then clean
	// shutdown).
	done := make(chan error, 1)
	go func() { done <- replicas[idx].Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("replica exited non-zero: %v\nlogs:\n%s", err, replicaLogs[idx].String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("replica did not exit after SIGTERM; logs:\n%s", replicaLogs[idx].String())
	}
	if !strings.Contains(replicaLogs[idx].String(), "draining") {
		t.Errorf("replica logs missing draining line:\n%s", replicaLogs[idx].String())
	}

	// Clean router shutdown.
	if err := router.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	go func() { done <- router.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("router exited non-zero after SIGTERM: %v\nlogs:\n%s", err, routerLogs.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("router did not exit within 10s of SIGTERM; logs:\n%s", routerLogs.String())
	}
}
