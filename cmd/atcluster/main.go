// Command atcluster fronts a fleet of activetimed replicas: one
// routing reverse proxy with health probing, replica ejection and
// fleet-wide telemetry aggregation.
//
//	POST /solve             routed per -policy, retried on transport failure
//	POST /jobs              routed per -policy; the admitting replica owns the job
//	GET  /jobs/{id}[...]    forwarded to the job's owner (sticky)
//	GET  /metrics           every replica's exposition summed + activetime_cluster_* series
//	GET  /debug/slo         per-replica SLO summaries + fleet aggregate
//	GET  /cluster/status    policy, health and routing counters per replica
//	GET  /healthz           ok while at least one replica is routable
//
// The affinity policy computes the replicas' canonical solve-cache
// digest router-side and consistent-hashes it, so identical instances
// (under any job permutation) always reach the same replica's cache.
//
// Usage:
//
//	atcluster -backends http://127.0.0.1:8081,http://127.0.0.1:8082 [-addr 127.0.0.1:9090]
//	          [-policy round-robin|least-loaded|affinity] [-vnodes N]
//	          [-probe-interval DUR] [-probe-timeout DUR] [-eject-after N] [-readmit-after N]
//	          [-port-file PATH] [-log json|text]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address (use :0 for a random port)")
	backends := flag.String("backends", "", "comma-separated replica base URLs, e.g. http://127.0.0.1:8081,http://127.0.0.1:8082")
	policy := flag.String("policy", cluster.PolicyRoundRobin, "routing policy: round-robin | least-loaded | affinity")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per replica on the affinity hash ring")
	probeInterval := flag.Duration("probe-interval", time.Second, "health-probe period")
	probeTimeout := flag.Duration("probe-timeout", 500*time.Millisecond, "health-probe round-trip timeout")
	ejectAfter := flag.Int("eject-after", 2, "consecutive probe failures before a replica is ejected")
	readmitAfter := flag.Int("readmit-after", 2, "consecutive probe successes before an ejected replica is re-admitted")
	portFile := flag.String("port-file", "", "write the bound host:port to this file once listening (for smoke tests)")
	logFormat := flag.String("log", "json", "log format: json | text")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "atcluster: unknown -log format %q\n", *logFormat)
		os.Exit(2)
	}
	log := slog.New(handler)

	var bks []cluster.Backend
	for i, raw := range strings.Split(*backends, ",") {
		url := strings.TrimSpace(raw)
		if url == "" {
			continue
		}
		bks = append(bks, cluster.Backend{Name: fmt.Sprintf("replica-%d", i), URL: url})
	}
	if len(bks) == 0 {
		fmt.Fprintln(os.Stderr, "atcluster: -backends is required (comma-separated replica URLs)")
		os.Exit(2)
	}

	rt, err := cluster.New(log, cluster.Config{
		Backends:      bks,
		Policy:        *policy,
		VNodes:        *vnodes,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		EjectAfter:    *ejectAfter,
		ReadmitAfter:  *readmitAfter,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "atcluster: %v\n", err)
		os.Exit(2)
	}
	rt.Start()
	defer rt.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen", "addr", *addr, "err", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(bound), 0o644); err != nil {
			log.Error("write port file", "path", *portFile, "err", err)
			os.Exit(1)
		}
	}
	log.Info("routing", "addr", bound, "policy", rt.Policy(),
		"replicas", len(bks), "probe_interval", probeInterval.String())

	hs := &http.Server{Handler: rt.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Info("shutting down", "reason", "signal")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			log.Error("shutdown", "err", err)
			os.Exit(1)
		}
		log.Info("bye")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Error("serve", "err", err)
			os.Exit(1)
		}
	}
}
