package cmd_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// statsJSON runs the activetime binary with -stats and returns the JSON
// document printed after the "stats:" marker.
func statsJSON(t *testing.T, bin string, args ...string) map[string]json.RawMessage {
	t.Helper()
	out, err := run(t, bin, args...)
	if err != nil {
		t.Fatalf("activetime %v: %v\n%s", args, err, out)
	}
	_, rest, ok := strings.Cut(out, "stats:\n")
	if !ok {
		t.Fatalf("no stats: marker in output:\n%s", out)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(rest), &doc); err != nil {
		t.Fatalf("stats JSON invalid: %v\n%s", err, rest)
	}
	return doc
}

// TestStatsGolden pins the -stats counter block for a fixed committed
// instance. Counters are pure operation counts, so they must be
// byte-stable across runs and across worker counts; stage timings are
// wall clock and are only checked for presence. Regenerate with
//
//	go test ./cmd -run TestStatsGolden -update
func TestStatsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "activetime")
	inst := filepath.Join("..", "testdata", "laminar-n12-g3-s7.json")
	golden := filepath.Join("testdata", "stats-laminar-n12-g3-s7.golden.json")

	doc := statsJSON(t, bin, "-in", inst, "-stats")
	counters, ok := doc["counters"]
	if !ok {
		t.Fatalf("stats JSON has no counters block: %v", doc)
	}
	var pretty json.RawMessage
	{
		var v any
		if err := json.Unmarshal(counters, &v); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		pretty = append(b, '\n')
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, pretty, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if string(want) != string(pretty) {
		t.Fatalf("counters diverge from %s:\n got: %s\nwant: %s\nrun with -update if the change is intended",
			golden, pretty, want)
	}

	// Stage timings must be present even though their values are free.
	var stages []struct {
		Stage string `json:"stage"`
	}
	if err := json.Unmarshal(doc["stages"], &stages); err != nil {
		t.Fatalf("stages block: %v", err)
	}
	seen := map[string]bool{}
	for _, s := range stages {
		seen[s.Stage] = true
	}
	for _, must := range []string{"tree_build", "lp_build", "lp_solve", "round", "place", "validate"} {
		if !seen[must] {
			t.Fatalf("stage %q missing from stats output (have %v)", must, seen)
		}
	}

	// Determinism: a second run, and a parallel run, must reproduce the
	// counter block exactly.
	again := statsJSON(t, bin, "-in", inst, "-stats")
	if !reflect.DeepEqual(again["counters"], counters) {
		t.Fatalf("counters changed between identical runs:\n%s\nvs\n%s", counters, again["counters"])
	}
	par := statsJSON(t, bin, "-in", inst, "-stats", "-workers", "4")
	if !reflect.DeepEqual(par["counters"], counters) {
		t.Fatalf("counters depend on worker count:\n%s\nvs\n%s", counters, par["counters"])
	}
}
