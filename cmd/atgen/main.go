// Command atgen generates random active-time instances as JSON.
//
// Usage:
//
//	atgen -kind laminar -n 12 -g 3 -seed 7 > instance.json
//	atgen -kind family -family nested32 -g 4 > gap.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/gapfam"
	"repro/internal/gen"
	"repro/internal/instance"
)

func main() {
	kind := flag.String("kind", "laminar", "laminar | general | unit | family")
	n := flag.Int("n", 10, "number of jobs (laminar/general/unit)")
	g := flag.Int64("g", 2, "machine capacity")
	seed := flag.Int64("seed", 1, "random seed")
	family := flag.String("family", "nested32",
		"for -kind family: naturalgap2 | nested32 | staircase | pinnedcomb")
	levels := flag.Int("levels", 4, "staircase levels / pinned-comb teeth")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var in *instance.Instance
	switch *kind {
	case "laminar":
		in = gen.RandomLaminar(rng, gen.DefaultLaminar(*n, *g))
	case "general":
		in = gen.RandomGeneral(rng, gen.DefaultGeneral(*n, *g))
	case "unit":
		in = gen.RandomUnitLaminar(rng, gen.DefaultLaminar(*n, *g))
	case "family":
		switch *family {
		case "naturalgap2":
			in = gapfam.NaturalGap2(*g)
		case "nested32":
			in = gapfam.Nested32(*g)
		case "staircase":
			in = gapfam.Staircase(*levels, *g)
		case "pinnedcomb":
			in = gapfam.PinnedComb(int64(*levels), *g)
		default:
			fatal(fmt.Errorf("unknown family %q", *family))
		}
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	if err := in.WriteJSON(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atgen:", err)
	os.Exit(1)
}
