// Command activetime solves an active-time scheduling instance read
// from a JSON file (see internal/instance for the format) and prints
// the schedule.
//
// Usage:
//
//	activetime -in instance.json [-alg nested95] [-v] [-gantt] [-metrics]
//	activetime -in instance.json -stats        # append solver instrumentation as JSON
//	activetime -in instance.json -workers 4    # solve independent forests concurrently
//	activetime -in instance.json -trace t.json # export a chrome://tracing span trace
//	activetime -in instance.json -compare      # run and cross-check all solvers
//	activetime -in instance.json -timeout 30s  # abort the solve after 30 seconds
//
// Fatal errors are reported as one structured JSON line on stderr
// ({"tool":"activetime","error":<kind>,"detail":<message>}) with exit
// code 1, so scripted callers can parse failures reliably.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	activetime "repro"
	"repro/internal/crosscheck"
)

func main() {
	path := flag.String("in", "", "instance JSON file (required)")
	alg := flag.String("alg", string(activetime.AlgNested95),
		"algorithm: nested95 | greedy-minimal | greedy-rtl | exact | all-open")
	verbose := flag.Bool("v", false, "print the full slot-by-slot schedule")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart")
	metrics := flag.Bool("metrics", false, "print schedule metrics")
	compare := flag.Bool("compare", false, "run every solver and cross-check consistency")
	exactLP := flag.Bool("exact-lp", false, "nested95: solve the LP in exact rational arithmetic")
	minimize := flag.Bool("minimize", false, "nested95: close removable slots after rounding")
	compact := flag.Bool("compact", false, "nested95: place slots to minimize power-on events")
	stats := flag.Bool("stats", false, "nested95: append pipeline instrumentation (stage times, pivot and flow counters) as JSON")
	workers := flag.Int("workers", 1, "nested95: worker-pool size for solving independent forests concurrently")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON span trace of the solve to this file (load in chrome://tracing or Perfetto)")
	outPath := flag.String("out", "", "write the schedule as JSON to this file")
	timeout := flag.Duration("timeout", 0, "abort the solve after this wall time (0 = unlimited)")
	flag.Parse()

	if *path == "" {
		fmt.Fprintln(os.Stderr, "activetime: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	in, err := activetime.LoadInstance(*path)
	if err != nil {
		fatal("load_instance", err)
	}

	if *compare {
		rep, err := crosscheck.Run(in)
		if err != nil {
			fatal("compare", err)
		}
		fmt.Print(rep)
		if !rep.OK() {
			os.Exit(1)
		}
		return
	}

	var tracer *activetime.Tracer
	if *tracePath != "" {
		tracer = activetime.NewTracer()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var res *activetime.Result
	if activetime.Algorithm(*alg) == activetime.AlgNested95 {
		res, err = activetime.SolveNested95Ctx(ctx, in, activetime.SolveOptions{
			ExactLP:    *exactLP,
			Minimalize: *minimize,
			Compact:    *compact,
			Workers:    *workers,
			Trace:      tracer,
		})
	} else {
		res, err = activetime.SolveTracedCtx(ctx, in, activetime.Algorithm(*alg), tracer)
	}
	if err != nil && errors.Is(err, context.DeadlineExceeded) {
		fatal("timeout", err)
	}
	if err != nil {
		fatal("solve", err)
	}
	if tracer != nil {
		if err := tracer.WriteChromeTraceFile(*tracePath); err != nil {
			fatal("write_trace", err)
		}
	}
	fmt.Printf("algorithm:    %s\n", res.Algorithm)
	fmt.Printf("jobs:         %d (g=%d, nested=%v)\n", in.N(), in.G, in.Nested())
	fmt.Printf("active slots: %d\n", res.ActiveSlots)
	if res.LPLowerBound > 0 {
		fmt.Printf("LP bound:     %.4f (certified ratio %.4f, guarantee %.4f)\n",
			res.LPLowerBound, res.CertifiedRatio, activetime.ApproxRatio)
	}
	if *metrics {
		fmt.Printf("metrics:      %s\n", res.Schedule.ComputeMetrics())
	}
	if *stats {
		if res.Stats == nil {
			fmt.Fprintf(os.Stderr, "activetime: -stats: algorithm %s records no instrumentation (use -alg nested95)\n", res.Algorithm)
		} else {
			b, err := json.MarshalIndent(res.Stats, "", "  ")
			if err != nil {
				fatal("stats_encode", err)
			}
			fmt.Println("stats:")
			fmt.Println(string(b))
		}
	}
	if *gantt {
		if h, ok := in.Horizon(); ok {
			fmt.Print(res.Schedule.Gantt(h.Start, h.End))
		}
	}
	if *verbose {
		fmt.Println(res.Schedule)
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal("write_schedule", err)
		}
		defer f.Close()
		if err := res.Schedule.WriteJSON(f); err != nil {
			fatal("write_schedule", err)
		}
	}
}

// fatal reports err as a single structured JSON line on stderr and
// exits 1. kind is a stable machine-readable failure class.
func fatal(kind string, err error) {
	line, merr := json.Marshal(map[string]string{
		"tool":   "activetime",
		"error":  kind,
		"detail": err.Error(),
	})
	if merr != nil {
		line = []byte(fmt.Sprintf(`{"tool":"activetime","error":%q}`, kind))
	}
	fmt.Fprintln(os.Stderr, string(line))
	os.Exit(1)
}
