package activetime

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/trace"
)

// multiForestInstance builds one instance out of `forests`
// well-separated laminar components.
func multiForestInstance(t testing.TB, forests, n int) *Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	var jobs []Job
	for k := 0; k < forests; k++ {
		part := gen.RandomLaminar(rng, gen.DefaultLaminar(n, 3)).Shift(int64(k) * 10_000)
		jobs = append(jobs, part.Jobs...)
	}
	in, err := NewInstance(3, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestTraceExportNestedStages is the end-to-end trace contract: a
// traced solve exports Chrome trace-event JSON whose span tree has the
// pipeline stages (tree_build → lp_solve → round → place) nested
// under each forest span, one forest span per component, and the LP
// substrate span nested under lp_solve.
func TestTraceExportNestedStages(t *testing.T) {
	in := multiForestInstance(t, 3, 8)
	comps, _ := in.Components()
	forests := len(comps) // a random laminar instance may itself split

	tr := NewTracer()
	res, err := SolveNested95(in, SolveOptions{Workers: 2, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveSlots <= 0 {
		t.Fatal("solve produced no active slots")
	}

	// Export to a real file, re-read, and parse — the same path the
	// CLI -trace flag uses.
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteChromeTraceFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := trace.ParseChromeTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the hierarchy from span_id/parent_id args.
	type ev struct {
		name   string
		id     int64
		parent int64
	}
	byID := map[int64]ev{}
	var roots, forestSpans []ev
	for _, e := range ct.TraceEvents {
		id, ok1 := asInt64(e.Args["span_id"])
		parent, ok2 := asInt64(e.Args["parent_id"])
		if !ok1 || !ok2 {
			t.Fatalf("event %q missing span_id/parent_id args: %v", e.Name, e.Args)
		}
		v := ev{name: e.Name, id: id, parent: parent}
		byID[id] = v
		switch {
		case parent == 0:
			roots = append(roots, v)
		case e.Name == "forest_solve":
			forestSpans = append(forestSpans, v)
		}
	}

	if len(roots) != 1 || roots[0].name != "solve" {
		t.Fatalf("want exactly one root span named solve, got %+v", roots)
	}
	if len(forestSpans) != forests {
		t.Fatalf("want %d forest_solve spans (one per forest worker task), got %d",
			forests, len(forestSpans))
	}

	// Each forest span carries the full stage chain as children.
	children := map[int64]map[string]int64{} // parent id -> stage name -> span id
	for _, e := range byID {
		if m := children[e.parent]; m == nil {
			children[e.parent] = map[string]int64{e.name: e.id}
		} else {
			m[e.name] = e.id
		}
	}
	for _, f := range forestSpans {
		if f.parent != roots[0].id {
			t.Errorf("forest span %d not parented to root", f.id)
		}
		stages := children[f.id]
		for _, stage := range []string{"tree_build", "lp_solve", "round", "place"} {
			if _, ok := stages[stage]; !ok {
				t.Errorf("forest span %d missing nested stage %q (has %v)", f.id, stage, stages)
			}
		}
		// The simplex sub-solver span nests under lp_solve.
		if lp, ok := stages["lp_solve"]; ok {
			if _, ok := children[lp]["simplex"]; !ok {
				t.Errorf("lp_solve span %d has no nested simplex span", lp)
			}
		}
	}

	// Sanity: the whole-schedule validate stage hangs off the root.
	if _, ok := children[roots[0].id]["validate"]; !ok {
		t.Error("root span missing validate stage child")
	}
}

// TestTraceExactSolver checks that the exact algorithm records B&B
// spans when traced.
func TestTraceExactSolver(t *testing.T) {
	in := multiForestInstance(t, 2, 6)
	tr := NewTracer()
	if _, err := SolveTraced(in, AlgExact, tr); err != nil {
		t.Fatal(err)
	}
	var sawBB bool
	for _, s := range tr.Spans() {
		if s.Name == "bb_nested" {
			sawBB = true
		}
	}
	if !sawBB {
		t.Fatal("exact solve recorded no bb_nested span")
	}
}

// TestUntracedSolveUnchanged pins that a nil tracer changes nothing:
// identical schedule and deterministic counters vs a traced solve.
func TestUntracedSolveUnchanged(t *testing.T) {
	in := multiForestInstance(t, 2, 8)
	plain, err := SolveNested95(in, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := SolveNested95(in, SolveOptions{Trace: NewTracer()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.ActiveSlots != traced.ActiveSlots {
		t.Fatalf("tracing changed the objective: %d vs %d", plain.ActiveSlots, traced.ActiveSlots)
	}
	if plain.Stats.Counters != traced.Stats.Counters {
		t.Fatalf("tracing changed deterministic counters:\n%+v\nvs\n%+v",
			plain.Stats.Counters, traced.Stats.Counters)
	}
}

func asInt64(v any) (int64, bool) {
	switch n := v.(type) {
	case float64:
		return int64(n), true
	case int64:
		return n, true
	case int:
		return int64(n), true
	}
	return 0, false
}
