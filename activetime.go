// Package activetime is a library for active-time scheduling: given
// preemptible jobs with windows and a machine that can run up to g
// jobs per discrete time slot, activate as few slots as possible while
// finishing every job inside its window.
//
// The centerpiece is the 9/5-approximation algorithm of Cao, Fineman,
// Li, Mestre, Russell and Umboh ("Brief Announcement: Nested
// Active-Time Scheduling", SPAA 2022) for instances whose job windows
// are nested (laminar), improving on the 2-approximation known for the
// general problem. The library also ships the classical baselines
// (minimal-feasible 3-approximation and a Kumar–Khuller-style
// right-to-left greedy), exact solvers for ground truth, the natural
// and Călinescu–Wang time-indexed LPs, the paper's integrality-gap
// families, and the §6 NP-completeness reduction chain.
//
// Quick start:
//
//	in, err := activetime.NewInstance(2, []activetime.Job{
//		{Processing: 2, Release: 0, Deadline: 6},
//		{Processing: 1, Release: 0, Deadline: 3},
//	})
//	res, err := activetime.Solve(in, activetime.AlgNested95)
//	fmt.Println(res.ActiveSlots, res.Schedule)
package activetime

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/flowfeas"
	"repro/internal/greedy"
	"repro/internal/instance"
	"repro/internal/lamtree"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Job is a preemptible job: Processing units of work to be placed in
// distinct slots of the window [Release, Deadline).
type Job = instance.Job

// Instance is an active-time scheduling instance (jobs plus the
// per-slot machine capacity G).
type Instance = instance.Instance

// Schedule assigns jobs to slots; see its Validate and NumActive
// methods.
type Schedule = sched.Schedule

// SolveStats is a snapshot of a solve's instrumentation: per-stage
// wall time, simplex/ratsimplex pivot counts, max-flow operation
// counts, branch-and-bound node counts and per-forest solve latency
// (see internal/metrics). Counters are deterministic for a fixed
// instance; stage times are wall-clock measurements.
type SolveStats = metrics.Stats

// Recorder accumulates instrumentation across solves; pass one via
// SolveOptions.Metrics to aggregate a whole sweep. It is safe for
// concurrent use.
type Recorder = metrics.Recorder

// Tracer collects hierarchical spans of a solve (pipeline stages,
// forest workers, LP and B&B sub-solvers) and exports them as Chrome
// trace-event JSON loadable in chrome://tracing or Perfetto; see
// internal/trace. Create one with NewTracer and pass it via
// SolveOptions.Trace or SolveTraced. A nil *Tracer disables tracing
// with near-zero overhead.
type Tracer = trace.Tracer

// NewTracer returns an empty span tracer.
func NewTracer() *Tracer { return trace.New() }

// NewInstance builds and validates an instance with capacity g.
func NewInstance(g int64, jobs []Job) (*Instance, error) {
	return instance.New(g, jobs)
}

// LoadInstance reads an instance from a JSON file.
func LoadInstance(path string) (*Instance, error) {
	return instance.LoadFile(path)
}

// Algorithm selects a solver in Solve.
type Algorithm string

// Available algorithms.
const (
	// AlgNested95 is the paper's 9/5-approximation; it requires
	// nested (laminar) job windows.
	AlgNested95 Algorithm = "nested95"
	// AlgCombinatorial is the lazy-activation solver for nested
	// windows: near-linear time, memory linear in jobs plus horizon,
	// exact on unit processing times and never worse than 2·OPT in
	// general. It is the only nested solver that scales to deep chains
	// and 10⁵–10⁶ jobs, where the LP tableau of AlgNested95 grows with
	// the fourth power of the nesting depth.
	AlgCombinatorial Algorithm = "comb"
	// AlgAuto routes per instance shape: non-nested windows go to
	// AlgGreedyMinimal, small shallow nested instances to AlgNested95
	// (for its LP certificate), and deep or huge nested instances to
	// AlgCombinatorial. See Route for the exact policy.
	AlgAuto Algorithm = "auto"
	// AlgGreedyMinimal deactivates slots left to right while feasible;
	// any minimal feasible solution is a 3-approximation.
	AlgGreedyMinimal Algorithm = "greedy-minimal"
	// AlgGreedyRTL deactivates right to left (Kumar–Khuller style).
	AlgGreedyRTL Algorithm = "greedy-rtl"
	// AlgExact computes the true optimum (exponential time; intended
	// for small instances and ground truth).
	AlgExact Algorithm = "exact"
	// AlgAllOpen opens every candidate slot (trivial baseline).
	AlgAllOpen Algorithm = "all-open"
)

// Algorithms lists every available algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{AlgAuto, AlgNested95, AlgCombinatorial, AlgGreedyMinimal, AlgGreedyRTL, AlgExact, AlgAllOpen}
}

// Result is the outcome of Solve.
type Result struct {
	// Algorithm that produced the result.
	Algorithm Algorithm
	// Schedule is a feasible schedule (validated against the input).
	Schedule *Schedule
	// ActiveSlots is the objective value achieved.
	ActiveSlots int64
	// LPLowerBound is the strengthened-LP lower bound on OPT; only
	// set by AlgNested95.
	LPLowerBound float64
	// CertifiedRatio is ActiveSlots / LPLowerBound when the LP bound
	// is available; an instance-specific a-posteriori guarantee.
	CertifiedRatio float64
	// Stats holds the solve's instrumentation snapshot; only set by
	// AlgNested95 and AlgCombinatorial.
	Stats *SolveStats
	// Route explains an AlgAuto dispatch (which solver ran and why);
	// nil when an algorithm was requested explicitly.
	Route *RouteDecision
	// Warm is retained solver state for warm-starting later near-miss
	// requests; only set when SolveOptions.CaptureWarm was requested
	// and the algorithm supports it (AlgNested95, AlgCombinatorial).
	Warm *WarmState
}

// Solve runs the chosen algorithm. All algorithms return a feasible,
// validated schedule or an error (in particular for infeasible
// instances, and for AlgNested95 on non-nested windows).
func Solve(in *Instance, alg Algorithm) (*Result, error) {
	return SolveTraced(in, alg, nil)
}

// SolveCtx is Solve with cooperative cancellation: when ctx is
// canceled or its deadline passes, the solve stops promptly (the
// nested95 pipeline checks between stages, per forest, per simplex
// pivot block and per max-flow BFS phase) and the returned error wraps
// ctx.Err(). A nil ctx behaves like context.Background().
func SolveCtx(ctx context.Context, in *Instance, alg Algorithm) (*Result, error) {
	return SolveTracedCtx(ctx, in, alg, nil)
}

// SolveTraced is Solve recording spans into tr (nil disables tracing):
// the nested95 pipeline emits its full span tree, the exact solver
// emits per-component branch-and-bound spans, and the remaining
// algorithms emit a single root span.
func SolveTraced(in *Instance, alg Algorithm, tr *Tracer) (*Result, error) {
	return SolveTracedCtx(context.Background(), in, alg, tr)
}

// SolveTracedCtx combines SolveCtx and SolveTraced. For AlgNested95
// cancellation is cooperative throughout the pipeline; the remaining
// algorithms check ctx before starting (they are either fast or, for
// AlgExact, intended for small instances).
func SolveTracedCtx(ctx context.Context, in *Instance, alg Algorithm, tr *Tracer) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch alg {
	case AlgAuto:
		dec := Route(in, nil, DefaultRouteLimits())
		res, err := SolveTracedCtx(ctx, in, dec.Algorithm, tr)
		if res != nil {
			res.Route = &dec
		}
		return res, err
	case AlgNested95:
		return SolveNested95Ctx(ctx, in, SolveOptions{Trace: tr})
	case AlgCombinatorial:
		return SolveCombinatorialCtx(ctx, in, SolveOptions{Trace: tr})
	case AlgGreedyMinimal:
		sp := tr.StartSpan("solve", trace.String("algorithm", string(alg)))
		res, err := greedy.MinimalFeasible(in, greedy.LeftToRight)
		sp.End()
		if err != nil {
			return nil, err
		}
		return wrap(alg, res.Schedule), nil
	case AlgGreedyRTL:
		sp := tr.StartSpan("solve", trace.String("algorithm", string(alg)))
		res, err := greedy.LazyRightToLeft(in)
		sp.End()
		if err != nil {
			return nil, err
		}
		return wrap(alg, res.Schedule), nil
	case AlgAllOpen:
		sp := tr.StartSpan("solve", trace.String("algorithm", string(alg)))
		res, err := greedy.AllOpen(in)
		sp.End()
		if err != nil {
			return nil, err
		}
		return wrap(alg, res.Schedule), nil
	case AlgExact:
		sp := tr.StartSpan("solve", trace.String("algorithm", string(alg)))
		s, err := exactSchedule(in, sp)
		sp.End()
		if err != nil {
			return nil, err
		}
		return wrap(alg, s), nil
	default:
		return nil, fmt.Errorf("activetime: unknown algorithm %q", alg)
	}
}

func wrap(alg Algorithm, s *Schedule) *Result {
	return &Result{Algorithm: alg, Schedule: s, ActiveSlots: s.NumActive()}
}

// exactSchedule computes an optimal schedule via the exact solvers,
// dispatching to the far faster per-node-count search (with component
// decomposition) when the windows are nested. B&B spans are recorded
// under sp (nil disables tracing).
func exactSchedule(in *Instance, sp *trace.Span) (*Schedule, error) {
	if !in.Nested() {
		_, slots, err := exact.SolveGeneralTrace(in, nil, sp)
		if err != nil {
			return nil, err
		}
		return flowfeas.ScheduleOnSlots(in, slots)
	}
	out := sched.New(in.G)
	comps, backmap := in.Components()
	for ci, comp := range comps {
		tree, err := lamtree.Build(comp)
		if err != nil {
			return nil, err
		}
		fsp := sp.StartChild("forest_exact", trace.Int("component", int64(ci)))
		_, counts, err := exact.SolveNestedTrace(tree, nil, fsp)
		fsp.End()
		if err != nil {
			return nil, err
		}
		s, err := flowfeas.ScheduleOnNodeCounts(tree, counts)
		if err != nil {
			return nil, err
		}
		for t, js := range s.Slots {
			for _, localID := range js {
				out.Assign(t, backmap[ci][localID])
			}
		}
	}
	if err := out.Validate(in); err != nil {
		return nil, fmt.Errorf("activetime: internal: exact schedule invalid: %w", err)
	}
	return out, nil
}

// SolveOptions tunes SolveNested95.
type SolveOptions struct {
	// ExactLP solves the strengthened LP in exact rational arithmetic
	// (slower; realizes the paper's exact-oracle assumption).
	ExactLP bool
	// Minimalize closes every removable slot after rounding; never
	// worse, often optimal, and the 9/5 guarantee is preserved.
	Minimalize bool
	// Compact places open slots to minimize power-on events
	// (fragments) at equal objective value.
	Compact bool
	// Workers bounds the number of goroutines solving independent
	// laminar forests concurrently; ≤ 1 solves sequentially. Results
	// are identical at any worker count.
	Workers int
	// Metrics optionally supplies an external recorder that
	// accumulates instrumentation across solves; when nil, each solve
	// gets a fresh recorder and Result.Stats covers exactly that
	// solve.
	Metrics *Recorder
	// Trace optionally supplies a span tracer that receives the
	// solve's hierarchical spans (pipeline stages, forest workers, LP
	// sub-solves); export them with Tracer.WriteChromeTrace. Nil
	// disables tracing.
	Trace *Tracer
	// CaptureWarm retains the solver's final state on Result.Warm so
	// a cache can warm-start later near-miss requests (raised g, job
	// supersets). Supported by AlgNested95 and AlgCombinatorial.
	CaptureWarm bool
}

// SolveNested95 runs the 9/5-approximation with explicit options.
func SolveNested95(in *Instance, opts SolveOptions) (*Result, error) {
	return SolveNested95Ctx(context.Background(), in, opts)
}

// SolveNested95Ctx is SolveNested95 with cooperative cancellation; see
// SolveCtx for the cancellation granularity.
func SolveNested95Ctx(ctx context.Context, in *Instance, opts SolveOptions) (*Result, error) {
	s, rep, err := core.SolveContext(ctx, in, core.Options{
		ExactLP:     opts.ExactLP,
		Minimalize:  opts.Minimalize,
		Compact:     opts.Compact,
		Workers:     opts.Workers,
		Metrics:     opts.Metrics,
		Trace:       opts.Trace,
		CaptureWarm: opts.CaptureWarm,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Algorithm:      AlgNested95,
		Schedule:       s,
		ActiveSlots:    s.NumActive(),
		LPLowerBound:   rep.LPValue,
		CertifiedRatio: rep.CertifiedRatio,
		Stats:          rep.Stats,
		Warm:           warmStateFor(AlgNested95, in, rep.Warm, rep.RoundedSlots, nil, s.NumActive()),
	}, nil
}

// Optimal returns the exact optimum objective value (exponential time;
// use on small instances).
func Optimal(in *Instance) (int64, error) {
	return exact.Opt(in)
}

// Feasible reports whether the instance admits any schedule (all
// candidate slots open).
func Feasible(in *Instance) bool {
	return flowfeas.CheckSlots(in, in.SortedSlots())
}

// ApproxRatio is the proven worst-case factor of AlgNested95.
const ApproxRatio = core.Ratio
