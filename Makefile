# Development targets for the nested active-time scheduling library.

GO ?= go

.PHONY: all build test race test-race cover bench bench-core bench-smoke fuzz-smoke serve-smoke jobs-smoke delta-smoke loadgen-smoke loadgen-bench obs-smoke cluster-smoke ci experiments experiments-quick vet fmt clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Alias kept alongside `race` so CI scripts can use either name.
test-race: race

# Short coverage-guided runs of the differential fuzz targets; seeds
# live in the packages' testdata/fuzz corpora.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDinicVsPushRelabel -fuzztime=$(FUZZTIME) ./internal/maxflow
	$(GO) test -run='^$$' -fuzz=FuzzSimplexVsRatsimplex -fuzztime=$(FUZZTIME) ./internal/ratsimplex
	$(GO) test -run='^$$' -fuzz=FuzzDifferentialNested -fuzztime=$(FUZZTIME) ./internal/comb
	$(GO) test -run='^$$' -fuzz=FuzzWarmVsCold -fuzztime=$(FUZZTIME) .

# Service smoke: build the real activetimed binary, boot it on a
# random port, hit /healthz and /metrics over HTTP, validate the
# Prometheus exposition (names/types pinned by the golden test in
# internal/metrics), then SIGTERM and require a clean exit.
serve-smoke:
	$(GO) test -run='^TestServeSmoke$$' -count=1 -v ./cmd/activetimed
	$(GO) test -run='^TestExpositionGolden$$' -count=1 ./internal/metrics

# Job-API smoke: build the real binary, boot it with a single job
# runner under the priority policy, and require over real HTTP that a
# stack of interactive jobs reorders ahead of a queued batch job, the
# SSE stream replays spans, and /metrics carries the per-class series.
jobs-smoke:
	$(GO) test -run='^TestJobsSmoke$$' -count=1 -v ./cmd/activetimed
	$(GO) test -run='^TestCLIAsync$$' -count=1 -v ./cmd/atload

# Delta smoke: build the real activetimed binary with warm-start
# retention on, and require over real HTTP that a raised-g near-miss
# and a superset near-miss of a cached base both warm-start (and that
# a warm fallback refreshes the stale retained state), with the
# activetime_warm_* counters on /metrics matching.
delta-smoke:
	$(GO) test -run='^TestDeltaSmoke$$' -count=1 -v ./cmd/activetimed

# Load-generator smoke: the CLI-level smoke test, then a real atload
# run (short in-process closed loop) whose JSON report must be
# non-empty with zero 5xx responses.
loadgen-smoke:
	$(GO) test -run='^TestCLISmoke$$' -count=1 -v ./cmd/atload
	$(GO) run ./cmd/atload -requests 50 -concurrency 2 -seed 1 \
		-jobs-min 4 -jobs-max 12 -distinct 8 -report /tmp/atload-smoke.json
	test -s /tmp/atload-smoke.json
	grep -q '"http_5xx": 0' /tmp/atload-smoke.json
	rm -f /tmp/atload-smoke.json

# Telemetry smoke: boot the real binary with the wide-event pipeline
# on, drive sync + async + error traffic over real HTTP, and require
# /debug/events, /debug/slo, a tail-sampled trace, the new /metrics
# series, and a parseable JSONL event sink. Then an in-process atload
# run whose client results must cross-check 1:1 against the server's
# wide-event log.
obs-smoke:
	$(GO) test -run='^TestObsSmoke$$' -count=1 -v ./cmd/activetimed
	$(GO) run ./cmd/atload -requests 60 -concurrency 4 -seed 1 \
		-jobs-min 4 -jobs-max 12 -distinct 8 \
		-events-file /tmp/atload-obs-smoke.jsonl -report /tmp/atload-obs-smoke.json
	grep -q '"pass": true' /tmp/atload-obs-smoke.json
	rm -f /tmp/atload-obs-smoke.jsonl /tmp/atload-obs-smoke.json

# Regenerate the committed load-test baseline. Absolute numbers are
# machine-dependent; the committed file pins report shape and the
# deterministic request/count fields.
loadgen-bench:
	$(GO) run ./cmd/atload -requests 400 -concurrency 4 -seed 1 \
		-jobs-min 6 -jobs-max 40 -distinct 16 \
		-slo-p99 250 -slo-max-error-rate 0.01 -report BENCH_loadgen.json

# Regenerate the committed core-solver benchmark baseline
# (BENCH_core.json): fixed-seed instance families, median ns/op,
# allocs/op and the deterministic pivot/Dinic counters. Compare two
# baselines with: go run ./cmd/atbench -compare old.json new.json
bench-core:
	$(GO) run ./cmd/atbench -out BENCH_core.json

# One short bench-core iteration into /tmp; asserts the report is
# valid (atbench -compare reloads and schema-checks it) and that the
# deterministic counters did not drift from the committed baseline.
bench-smoke:
	$(GO) run ./cmd/atbench -quick -out /tmp/bench-smoke.json
	$(GO) run ./cmd/atbench -compare -check-counters BENCH_core.json /tmp/bench-smoke.json
	rm -f /tmp/bench-smoke.json

# Fleet smoke: build the real activetimed and atcluster binaries, boot
# three replicas behind the router over real HTTP, require that
# cache-affinity routing pins a (permuted) instance to one replica's
# cache, then SIGTERM that replica and require the router to eject it
# via the draining handshake while traffic keeps flowing.
cluster-smoke:
	$(GO) test -run='^TestClusterSmoke$$' -count=1 -v ./cmd/atcluster

# CI entry point: everything that must be green before merging.
ci: build vet test race fuzz-smoke serve-smoke jobs-smoke delta-smoke loadgen-smoke obs-smoke cluster-smoke bench-smoke

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Regenerate every table in EXPERIMENTS.md (full grids, ~5 s).
experiments:
	$(GO) run ./cmd/atexp

# Small grids for a fast smoke run (< 1 s).
experiments-quick:
	$(GO) run ./cmd/atexp -quick

clean:
	$(GO) clean ./...
	rm -f before.dot after.dot
