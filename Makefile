# Development targets for the nested active-time scheduling library.

GO ?= go

.PHONY: all build test race test-race cover bench fuzz-smoke serve-smoke ci experiments experiments-quick vet fmt clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Alias kept alongside `race` so CI scripts can use either name.
test-race: race

# Short coverage-guided runs of the differential fuzz targets; seeds
# live in the packages' testdata/fuzz corpora.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDinicVsPushRelabel -fuzztime=$(FUZZTIME) ./internal/maxflow
	$(GO) test -run='^$$' -fuzz=FuzzSimplexVsRatsimplex -fuzztime=$(FUZZTIME) ./internal/ratsimplex

# Service smoke: build the real activetimed binary, boot it on a
# random port, hit /healthz and /metrics over HTTP, validate the
# Prometheus exposition (names/types pinned by the golden test in
# internal/metrics), then SIGTERM and require a clean exit.
serve-smoke:
	$(GO) test -run='^TestServeSmoke$$' -count=1 -v ./cmd/activetimed
	$(GO) test -run='^TestExpositionGolden$$' -count=1 ./internal/metrics

# CI entry point: everything that must be green before merging.
ci: build vet test race fuzz-smoke serve-smoke

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Regenerate every table in EXPERIMENTS.md (full grids, ~5 s).
experiments:
	$(GO) run ./cmd/atexp

# Small grids for a fast smoke run (< 1 s).
experiments-quick:
	$(GO) run ./cmd/atexp -quick

clean:
	$(GO) clean ./...
	rm -f before.dot after.dot
