# Development targets for the nested active-time scheduling library.

GO ?= go

.PHONY: all build test race cover bench experiments experiments-quick vet fmt clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Regenerate every table in EXPERIMENTS.md (full grids, ~5 s).
experiments:
	$(GO) run ./cmd/atexp

# Small grids for a fast smoke run (< 1 s).
experiments-quick:
	$(GO) run ./cmd/atexp -quick

clean:
	$(GO) clean ./...
	rm -f before.dot after.dot
