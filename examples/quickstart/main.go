// Quickstart: build a small nested instance, run the paper's 9/5
// approximation, and inspect the schedule and its optimality
// certificate.
package main

import (
	"fmt"
	"log"

	activetime "repro"
)

func main() {
	// A machine that can run up to 2 jobs per slot. Windows are
	// nested: [0,8) ⊃ [0,4), [5,8).
	in, err := activetime.NewInstance(2, []activetime.Job{
		{Processing: 3, Release: 0, Deadline: 8}, // long flexible job
		{Processing: 2, Release: 0, Deadline: 4}, // front phase
		{Processing: 1, Release: 0, Deadline: 4},
		{Processing: 2, Release: 5, Deadline: 8}, // back phase
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := activetime.Solve(in, activetime.AlgNested95)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("active slots: %d\n", res.ActiveSlots)
	fmt.Printf("LP lower bound on OPT: %.3f\n", res.LPLowerBound)
	fmt.Printf("certified ratio: %.3f (worst-case guarantee %.3f)\n",
		res.CertifiedRatio, activetime.ApproxRatio)
	fmt.Println(res.Schedule)

	// Compare against the true optimum (fine for small instances).
	opt, err := activetime.Optimal(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact OPT: %d\n", opt)
}
