// Batch fleet: solve a fleet of instances concurrently with the
// worker-pool API, then drill into the worst instance with metrics and
// a Gantt chart. This is the shape of a capacity-planning sweep: many
// what-if workloads, one decision.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"

	activetime "repro"
	"repro/internal/gen"
)

func main() {
	// A fleet of 40 synthetic workloads with varying parallelism.
	rng := rand.New(rand.NewSource(7))
	fleet := make([]*activetime.Instance, 40)
	for i := range fleet {
		g := int64(2 + rng.Intn(4))
		fleet[i] = gen.RandomLaminar(rng, gen.DefaultLaminar(12+rng.Intn(8), g))
	}

	results := activetime.SolveBatch(fleet, activetime.AlgNested95, 0)

	var totalSlots int64
	var totalLP float64
	worst := -1
	worstRatio := 0.0
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("instance %d: %v", r.Index, r.Err)
		}
		totalSlots += r.Result.ActiveSlots
		totalLP += r.Result.LPLowerBound
		if r.Result.CertifiedRatio > worstRatio {
			worstRatio = r.Result.CertifiedRatio
			worst = r.Index
		}
	}
	fmt.Printf("fleet: %d instances solved on %d workers\n", len(fleet), runtime.GOMAXPROCS(0))
	fmt.Printf("total active slots: %d (LP lower bound %.1f)\n", totalSlots, totalLP)
	fmt.Printf("fleet-level certified ratio: %.4f (guarantee %.4f)\n",
		float64(totalSlots)/totalLP, activetime.ApproxRatio)

	fmt.Printf("\nworst certified instance: #%d (ratio %.4f)\n", worst, worstRatio)
	res := results[worst].Result
	fmt.Println("metrics:", res.Schedule.ComputeMetrics())
	if h, ok := fleet[worst].Horizon(); ok {
		fmt.Print(res.Schedule.Gantt(h.Start, h.End))
	}

	// Squeeze the worst instance with the minimalization post-pass.
	tight, err := activetime.SolveNested95(fleet[worst], activetime.SolveOptions{Minimalize: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter minimalization: %d slots (was %d)\n",
		tight.ActiveSlots, res.ActiveSlots)
}
