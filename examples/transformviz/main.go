// Transform visualization: reproduces the paper's Figure 1(b)/(c) in
// executable form. A feasible LP solution with open-slot mass sitting
// on an ancestor (as in Figure 1b) is transformed per Lemma 3.1: the
// mass migrates into descendants until every positive node has fully
// open strict descendants (Figure 1c). Both states are printed and
// emitted as Graphviz DOT.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/instance"
	"repro/internal/lamtree"
	"repro/internal/nestlp"
)

func main() {
	// Chain: [0,5) ⊃ [0,3); the inner job is long (p=2), the outer job
	// short (p=1). Canonicalization adds a rigid grandchild [0,2).
	in, err := instance.New(2, []instance.Job{
		{Processing: 1, Release: 0, Deadline: 5},
		{Processing: 2, Release: 0, Deadline: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := lamtree.Build(in)
	if err != nil {
		log.Fatal(err)
	}
	if err := tree.Canonicalize(); err != nil {
		log.Fatal(err)
	}
	model := nestlp.NewModel(tree)

	// Hand-build the Figure 1(b) state: the rigid grandchild is fully
	// open, and the outer job's unit of mass sits at the ROOT even
	// though the middle node has spare length — exactly the pattern
	// Lemma 3.1 eliminates.
	sol := &nestlp.Solution{
		X: make([]float64, tree.M()),
		Y: make([]float64, len(model.Pairs)),
	}
	root := tree.Roots[0]
	gc := tree.NodeOf[1] // rigid grandchild holding the p=2 job
	sol.X[gc] = 2
	sol.X[root] = 1
	sol.Y[model.PairIndex(gc, 1)] = 2   // inner job fully at the grandchild
	sol.Y[model.PairIndex(root, 0)] = 1 // outer job at the root
	for _, x := range sol.X {
		sol.Objective += x
	}
	if err := model.Check(sol, 1e-9); err != nil {
		log.Fatal("hand-built solution must be feasible: ", err)
	}

	fmt.Printf("feasible solution value: %.1f\n\n", sol.Objective)
	fmt.Println("before transformation (Figure 1b): mass at the root")
	printX(tree, sol.X)
	writeDOT(tree, sol.X, "before.dot")

	model.Transform(sol)
	if err := model.Check(sol, 1e-9); err != nil {
		log.Fatal("transformed solution must stay feasible: ", err)
	}
	fmt.Println("\nafter transformation (Figure 1c): mass pushed down")
	printX(tree, sol.X)
	writeDOT(tree, sol.X, "after.dot")

	I := model.TopmostPositive(sol)
	fmt.Printf("\ntopmost positive set I: %v\n", I)
	if err := model.CheckClaim1(sol, I); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Claim 1 (1a)-(1e): verified")
	fmt.Println("\nwrote before.dot and after.dot (render with `dot -Tsvg`)")
}

func writeDOT(t *lamtree.Tree, x []float64, path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := t.WriteDOT(f, x); err != nil {
		log.Fatal(err)
	}
}

// printX renders the tree with per-node x values, indented by depth.
func printX(t *lamtree.Tree, x []float64) {
	var walk func(id int)
	walk = func(id int) {
		n := &t.Nodes[id]
		for i := 0; i < n.Depth; i++ {
			fmt.Print("  ")
		}
		kind := "real"
		if n.Virtual {
			kind = "virtual"
		}
		full := ""
		if n.L > 0 && x[id] >= float64(n.L)-1e-9 {
			full = "  (fully open)"
		}
		fmt.Printf("#%d %s L=%d %s x=%.4f%s\n", id, n.K, n.L, kind, x[id], full)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
}
