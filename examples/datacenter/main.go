// Datacenter energy scheduling: the motivating application of the
// active-time model (paper §1, Related work). A cluster head can power
// a machine on or off per 15-minute slot; while on, the machine runs
// up to g batch jobs concurrently at a flat energy cost. Maintenance
// policy gives each batch job a service window, and windows are
// organized hierarchically (shift ⊃ half-shift ⊃ maintenance slice),
// so they are nested.
//
// The example generates a synthetic job mix, runs all algorithms, and
// reports the energy each one would pay, relative to the naive
// always-on baseline.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	activetime "repro"
)

const (
	g           = 4    // concurrent jobs per powered slot
	slotMinutes = 15   // slot length
	kwhPerSlot  = 2.25 // energy per powered slot (9 kW machine)
)

func main() {
	in := buildWorkload()
	fmt.Printf("workload: %d jobs, capacity g=%d, nested windows: %v\n\n",
		in.N(), in.G, in.Nested())

	naive, err := activetime.Solve(in, activetime.AlgAllOpen)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tpowered slots\tenergy kWh\tsaving vs always-on")
	for _, alg := range []activetime.Algorithm{
		activetime.AlgAllOpen,
		activetime.AlgGreedyMinimal,
		activetime.AlgGreedyRTL,
		activetime.AlgNested95,
		activetime.AlgExact,
	} {
		res, err := activetime.Solve(in, alg)
		if err != nil {
			log.Fatal(err)
		}
		energy := float64(res.ActiveSlots) * kwhPerSlot
		saving := 1 - float64(res.ActiveSlots)/float64(naive.ActiveSlots)
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.0f%%\n", alg, res.ActiveSlots, energy, 100*saving)
	}
	tw.Flush()

	res, _ := activetime.Solve(in, activetime.AlgNested95)
	fmt.Printf("\nnested95 certificate: ≤ %.2f × optimal (LP bound %.2f slots)\n",
		res.CertifiedRatio, res.LPLowerBound)
	fmt.Printf("each powered slot is %d minutes at %.2f kWh\n", slotMinutes, kwhPerSlot)
}

// buildWorkload synthesizes a shift of batch jobs with hierarchical
// maintenance windows: a full shift [0, 32), two half-shifts, and
// four maintenance slices.
func buildWorkload() *activetime.Instance {
	rng := rand.New(rand.NewSource(2026))
	windows := []struct{ lo, hi int64 }{
		{0, 32},           // full shift
		{0, 16}, {16, 32}, // half shifts
		{0, 8}, {8, 16}, {16, 24}, {24, 32}, // maintenance slices
	}
	var jobs []activetime.Job
	for _, w := range windows {
		// A few jobs per window; longer jobs in wider windows.
		for k := 0; k < 3; k++ {
			maxP := (w.hi - w.lo) / 2
			if maxP < 1 {
				maxP = 1
			}
			jobs = append(jobs, activetime.Job{
				Processing: 1 + rng.Int63n(maxP),
				Release:    w.lo,
				Deadline:   w.hi,
			})
		}
	}
	in, err := activetime.NewInstance(g, jobs)
	if err != nil {
		log.Fatal(err)
	}
	return in
}
