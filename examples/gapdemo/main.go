// Gap demo: reconstructs the paper's integrality-gap story in code.
//
//  1. The natural time-indexed LP has gap → 2 on a *nested* family
//     (g+1 unit jobs in a two-slot window), which is why a stronger LP
//     is needed even for the nested special case.
//  2. The strengthened LP's ceiling constraint closes that family
//     completely.
//  3. On the Lemma 5.1 family (long job + g groups), every LP
//     considered — the strengthened tree LP and Călinescu–Wang's —
//     still has gap approaching 3/2.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	activetime "repro"
	"repro/internal/gapfam"
	"repro/internal/lamtree"
	"repro/internal/nestlp"
	"repro/internal/timelp"
)

func main() {
	fmt.Println("--- family 1: g+1 unit jobs in a 2-slot window (nested) ---")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "g\tnatural LP\tstrengthened LP\tOPT\tnatural gap")
	for _, g := range []int64{2, 4, 8, 16} {
		in := gapfam.NaturalGap2(g)
		nat, err := timelp.Solve(in, timelp.Natural)
		if err != nil {
			log.Fatal(err)
		}
		strong := strengthenedLP(in)
		opt, err := activetime.Optimal(in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%d\t%.4f\n",
			g, nat.Objective, strong, opt, float64(opt)/nat.Objective)
	}
	tw.Flush()

	fmt.Println("\n--- family 2: Lemma 5.1 (long job + g groups of g unit jobs) ---")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "g\twitness (≤ CW LP)\tstrengthened LP\tOPT (=3g/2)\tgap")
	for _, g := range []int64{2, 4, 6, 8} {
		in := gapfam.Nested32(g)
		x, y := gapfam.Nested32Witness(g)
		if err := timelp.CheckFeasible(in, timelp.CalinescuWang, x, y, 1e-9); err != nil {
			log.Fatalf("witness rejected at g=%d: %v", g, err)
		}
		strong := strengthenedLP(in)
		opt, err := gapfam.Nested32Opt(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%d\t%.1f\t%.4f\t%d\t%.4f\n",
			g, gapfam.Nested32LPUpper(g), strong, opt, float64(opt)/strong)
	}
	tw.Flush()
	fmt.Println("\nthe gap of the strengthened LP approaches 3/2 (Lemma 5.1); its")
	fmt.Println("rounding guarantee of 9/5 therefore leaves at most 0.3 on the table.")
}

func strengthenedLP(in *activetime.Instance) float64 {
	tr, err := lamtree.Build(in)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.Canonicalize(); err != nil {
		log.Fatal(err)
	}
	sol, err := nestlp.NewModel(tr).Solve()
	if err != nil {
		log.Fatal(err)
	}
	return sol.Objective
}
