// NP-hardness demo: walks the paper's §6 reduction chain on a concrete
// example. A set cover question is translated to prefix sum cover,
// then to a nested active-time instance, and the exact scheduler
// answers the original question.
package main

import (
	"fmt"
	"log"

	activetime "repro"
	"repro/internal/psc"
)

func main() {
	// Universe {0,1,2}; can 2 sets cover it?
	sc := &psc.SetCover{
		D:    3,
		Sets: [][]int{{0, 1}, {1, 2}, {2}, {0}},
		K:    2,
	}
	fmt.Printf("set cover: universe size %d, sets %v, budget k=%d\n", sc.D, sc.Sets, sc.K)
	fmt.Printf("brute force answer: %v\n\n", sc.BruteForce())

	// Stage 1: set cover → prefix sum cover.
	p := psc.FromSetCover(sc)
	fmt.Println("prefix sum cover instance (restricted form):")
	for i, u := range p.U {
		fmt.Printf("  u%d = %v\n", i, u)
	}
	fmt.Printf("  v  = %v, k = %d\n", p.V, p.K)
	pscYes, witness := p.BruteForce()
	fmt.Printf("PSC brute force: %v (witness sets %v)\n\n", pscYes, witness)

	// Stage 2: prefix sum cover → nested active-time scheduling.
	red, err := psc.Reduce(p)
	if err != nil {
		log.Fatal(err)
	}
	in := red.Scheduling
	fmt.Printf("scheduling instance: %d jobs, g=%d, nested=%v\n", in.N(), in.G, in.Nested())
	fmt.Printf("forced (non-special) slots: %d, decision budget: %d\n",
		red.ForcedSlots, red.Budget)

	opt, err := activetime.Optimal(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact active-time OPT: %d\n", opt)
	fmt.Printf("OPT ≤ budget? %v  (must match the set cover answer)\n", opt <= red.Budget)

	// The Lemma 6.2 machinery underlying the equivalence: opening the
	// special slot of window i frees exactly u_i[j] slots on machine j,
	// so the free-machine profile of the witness choice is the
	// coordinate-wise sum of its vectors, and the target jobs fit iff
	// that profile prefix-dominates v — the PSC condition itself.
	fmt.Println("\nLemma 6.2 view of the witness:")
	vs := make([]psc.Vector, len(witness))
	for i, id := range witness {
		vs[i] = p.U[id]
	}
	e := psc.Sum(p.Dim(), vs...)
	fmt.Printf("  free-machine profile e = Σ u = %v\n", e)
	fmt.Printf("  e prefix-dominates v = %v: %v\n", p.V, psc.PrefixDominates(e, p.V))
}
