// Multi-interval demo: the related-work generalization where each job
// may run in any of several disjoint windows (maintenance jobs that can
// happen in the morning OR the evening slot, say). The problem is
// NP-hard already for g ≥ 3, but Wolsey's submodular-cover greedy is
// an H_g-approximation; this example runs it against the exact
// branch-and-bound and prints the H_g certificate.
package main

import (
	"fmt"
	"log"

	"repro/internal/interval"
	"repro/internal/multi"
)

func main() {
	// Four maintenance jobs; each may run in its morning or evening
	// window, at most g=2 concurrently per slot.
	in, err := multi.New(2, []multi.Job{
		{Processing: 2, Windows: []interval.Interval{
			interval.New(0, 3), interval.New(10, 13),
		}},
		{Processing: 2, Windows: []interval.Interval{
			interval.New(1, 3), interval.New(11, 14),
		}},
		{Processing: 3, Windows: []interval.Interval{
			interval.New(0, 4), interval.New(10, 14),
		}},
		{Processing: 1, Windows: []interval.Interval{
			interval.New(12, 14),
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("jobs: %d, g=%d, total work: %d units\n",
		in.N(), in.G, in.TotalProcessing())

	open, err := in.GreedyCover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Wolsey greedy opens %d slots: %v\n", len(open), open)

	opt, optSlots, err := in.SolveExact()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact optimum:      %d slots: %v\n", opt, optSlots)
	fmt.Printf("ratio %.3f ≤ H_%d = %.3f (Wolsey's submodular-cover bound)\n",
		float64(len(open))/float64(opt), in.G, multi.HarmonicG(in.G))

	s, err := in.ScheduleOnSlots(open)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngreedy schedule:")
	fmt.Println(s)
}
