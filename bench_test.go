package activetime

// Benchmark harness: one benchmark per experiment table (E1–E17, see
// DESIGN.md §4 and EXPERIMENTS.md) plus micro-benchmarks for the main
// solver stages. Regenerate every table with
//
//	go run ./cmd/atexp
//
// and time the regeneration with
//
//	go test -bench=. -benchmem

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/gapfam"
	"repro/internal/gen"
	"repro/internal/greedy"
	"repro/internal/lamtree"
	"repro/internal/maxflow"
	"repro/internal/nestlp"
	"repro/internal/psc"
	"repro/internal/timelp"
)

func benchConfig() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.Workers = 1 // stable single-threaded timings
	return cfg
}

func runExperiment(b *testing.B, run func(experiments.Config) (*experiments.Table, error)) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1ApproxRatio(b *testing.B)   { runExperiment(b, experiments.E1ApproxRatio) }
func BenchmarkE2NaturalGap(b *testing.B)    { runExperiment(b, experiments.E2NaturalGap) }
func BenchmarkE3Gap32(b *testing.B)         { runExperiment(b, experiments.E3Gap32) }
func BenchmarkE4Greedy(b *testing.B)        { runExperiment(b, experiments.E4Greedy) }
func BenchmarkE5HeadToHead(b *testing.B)    { runExperiment(b, experiments.E5HeadToHead) }
func BenchmarkE6Reduction(b *testing.B)     { runExperiment(b, experiments.E6Reduction) }
func BenchmarkE7Transform(b *testing.B)     { runExperiment(b, experiments.E7Transform) }
func BenchmarkE8Scaling(b *testing.B)       { runExperiment(b, experiments.E8Scaling) }
func BenchmarkE9RoundingRatio(b *testing.B) { runExperiment(b, experiments.E9RoundingRatio) }
func BenchmarkE10ConfigFit(b *testing.B)    { runExperiment(b, experiments.E10ConfigFit) }
func BenchmarkE11UnitIntegrality(b *testing.B) {
	runExperiment(b, experiments.E11UnitIntegrality)
}
func BenchmarkE12Ablation(b *testing.B) { runExperiment(b, experiments.E12Ablation) }
func BenchmarkE13MultiInterval(b *testing.B) {
	runExperiment(b, experiments.E13MultiInterval)
}
func BenchmarkE14OnePass(b *testing.B) { runExperiment(b, experiments.E14OnePass) }
func BenchmarkE15Adversarial(b *testing.B) {
	runExperiment(b, experiments.E15Adversarial)
}
func BenchmarkE16CWGapSearch(b *testing.B) {
	runExperiment(b, experiments.E16CWGapSearch)
}
func BenchmarkE17BusyTime(b *testing.B) {
	runExperiment(b, experiments.E17BusyTime)
}

// --- Component micro-benchmarks ---

func benchInstances(n int, count int) []*Instance {
	rng := rand.New(rand.NewSource(42))
	out := make([]*Instance, count)
	for i := range out {
		out[i] = gen.RandomLaminar(rng, gen.DefaultLaminar(n, 3))
	}
	return out
}

func BenchmarkNested95Solve(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		ins := benchInstances(n, 8)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Solve(ins[i%len(ins)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGreedyRTL(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		ins := benchInstances(n, 8)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := greedy.LazyRightToLeft(ins[i%len(ins)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExactNested(b *testing.B) {
	for _, n := range []int{6, 10} {
		ins := benchInstances(n, 8)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exact.Opt(ins[i%len(ins)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStrengthenedLP(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	in := gen.RandomLaminar(rng, gen.DefaultLaminar(16, 3))
	tr, err := lamtree.Build(in)
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.Canonicalize(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model := nestlp.NewModel(tr)
		if _, err := model.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaturalLP(b *testing.B) {
	in := gapfam.NaturalGap2(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := timelp.Solve(in, timelp.Natural); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCWLP(b *testing.B) {
	in := gapfam.Nested32(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := timelp.Solve(in, timelp.CalinescuWang); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPSCReduction(b *testing.B) {
	in := &psc.Instance{
		U: []psc.Vector{{3, 2}, {2, 1}, {3, 1}},
		V: psc.Vector{4, 3},
		K: 2,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		red, err := psc.Reduce(in)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := exact.Opt(red.Scheduling); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiForest measures the component-parallel solve path: one
// instance made of many well-separated laminar forests, solved with
// increasing worker counts. The workers=1 case doubles as the
// instrumentation-overhead baseline.
func BenchmarkMultiForest(b *testing.B) {
	rng := rand.New(rand.NewSource(4242))
	var jobs []Job
	for k := 0; k < 8; k++ {
		part := gen.RandomLaminar(rng, gen.DefaultLaminar(10, 3)).Shift(int64(k) * 10_000)
		jobs = append(jobs, part.Jobs...)
	}
	in, err := NewInstance(3, jobs)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run("workers="+string(rune('0'+workers)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SolveNested95(in, SolveOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchTraceInstance is a mid-size laminar instance (4 forests × 12
// jobs) shared by the tracing-overhead pair below.
func benchTraceInstance(b *testing.B) *Instance {
	b.Helper()
	rng := rand.New(rand.NewSource(1717))
	var jobs []Job
	for k := 0; k < 4; k++ {
		part := gen.RandomLaminar(rng, gen.DefaultLaminar(12, 3)).Shift(int64(k) * 10_000)
		jobs = append(jobs, part.Jobs...)
	}
	in, err := NewInstance(3, jobs)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkSolveNopTrace is the tracing-disabled baseline: the span
// calls are present in the pipeline but the nil tracer turns every one
// into a no-op. Compare against BenchmarkSolveTraced; EXPERIMENTS.md
// records the measured delta (<5% is the acceptance bar for the
// disabled path).
func BenchmarkSolveNopTrace(b *testing.B) {
	in := benchTraceInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveNested95(in, SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveTraced runs the same solve with a live tracer
// recording every pipeline span.
func BenchmarkSolveTraced(b *testing.B) {
	in := benchTraceInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveNested95(in, SolveOptions{Trace: NewTracer()}); err != nil {
			b.Fatal(err)
		}
	}
}

func sizeName(n int) string {
	return "n=" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// --- Substrate comparison benchmarks ---

func buildFlowGraph(n int, seed int64) *maxflow.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := maxflow.New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Intn(3) == 0 {
				g.AddEdge(u, v, int64(rng.Intn(20)))
			}
		}
	}
	return g
}

func BenchmarkMaxflowDinic(b *testing.B) {
	g := buildFlowGraph(64, 99)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Reset()
		g.Run(0, 63)
	}
}

func BenchmarkMaxflowPushRelabel(b *testing.B) {
	g := buildFlowGraph(64, 99)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.RunPushRelabel(0, 63)
	}
}

// BenchmarkExactRationalLP measures the cost of the exact-oracle mode
// relative to the float pipeline (BenchmarkStrengthenedLP).
func BenchmarkExactRationalLP(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	in := gen.RandomLaminar(rng, gen.DefaultLaminar(10, 3))
	tr, err := lamtree.Build(in)
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.Canonicalize(); err != nil {
		b.Fatal(err)
	}
	model := nestlp.NewModel(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.SolveExact(); err != nil {
			b.Fatal(err)
		}
	}
}
