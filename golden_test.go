package activetime

// Golden tests: canonical instances under testdata/ with recorded
// optima. These pin the end-to-end behaviour of the exact solvers and
// the 9/5 guarantee against accidental regressions; the files are also
// the CLI documentation's example inputs.

import (
	"path/filepath"
	"testing"
)

var golden = []struct {
	file string
	opt  int64
}{
	{"laminar-n12-g3-s7.json", 12},
	{"laminar-n8-g2-s3.json", 11},
	{"naturalgap2-g6.json", 2},
	{"nested32-g4.json", 6},
	{"staircase-l4-g2.json", 8},
	{"unit-n10-g2-s5.json", 5},
}

func TestGoldenInstances(t *testing.T) {
	for _, g := range golden {
		g := g
		t.Run(g.file, func(t *testing.T) {
			in, err := LoadInstance(filepath.Join("testdata", g.file))
			if err != nil {
				t.Fatal(err)
			}
			opt, err := Optimal(in)
			if err != nil {
				t.Fatal(err)
			}
			if opt != g.opt {
				t.Fatalf("OPT = %d, golden %d", opt, g.opt)
			}
			res, err := Solve(in, AlgExact)
			if err != nil {
				t.Fatal(err)
			}
			if res.ActiveSlots != g.opt {
				t.Fatalf("exact schedule %d slots, golden %d", res.ActiveSlots, g.opt)
			}
			if err := res.Schedule.Validate(in); err != nil {
				t.Fatal(err)
			}
			approx, err := Solve(in, AlgNested95)
			if err != nil {
				t.Fatal(err)
			}
			if float64(approx.ActiveSlots) > ApproxRatio*float64(g.opt)+1e-9 {
				t.Fatalf("nested95 %d slots > 9/5 × %d", approx.ActiveSlots, g.opt)
			}
		})
	}
}
