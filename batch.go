package activetime

import (
	"runtime"
	"sync"

	"repro/internal/sched"
)

// BatchResult pairs one instance's outcome with its input index; Err
// is set when that instance failed (e.g. infeasible) while others
// succeeded.
type BatchResult struct {
	Index  int
	Result *Result
	Err    error
}

// SolveBatch solves many instances concurrently on a bounded worker
// pool (workers ≤ 0 selects GOMAXPROCS). Results are returned in input
// order; per-instance failures are reported in the corresponding
// BatchResult rather than aborting the batch.
func SolveBatch(ins []*Instance, alg Algorithm, workers int) []BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ins) {
		workers = len(ins)
	}
	out := make([]BatchResult, len(ins))
	if workers <= 1 {
		for i, in := range ins {
			res, err := Solve(in, alg)
			out[i] = BatchResult{Index: i, Result: res, Err: err}
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res, err := Solve(ins[i], alg)
				out[i] = BatchResult{Index: i, Result: res, Err: err}
			}
		}()
	}
	for i := range ins {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// Metrics summarizes a schedule (utilization, fragmentation, peak
// concurrency, …); see the fields of sched.Metrics.
type Metrics = sched.Metrics
