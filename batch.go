package activetime

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/sched"
)

// BatchResult pairs one instance's outcome with its input index; Err
// is set when that instance failed (e.g. infeasible) while others
// succeeded.
type BatchResult struct {
	Index  int
	Result *Result
	Err    error
}

// SolveBatch solves many instances concurrently on a bounded worker
// pool (workers ≤ 0 selects GOMAXPROCS). Results are returned in input
// order; per-instance failures are reported in the corresponding
// BatchResult rather than aborting the batch.
func SolveBatch(ins []*Instance, alg Algorithm, workers int) []BatchResult {
	return SolveBatchCtx(context.Background(), ins, alg, workers)
}

// SolveBatchCtx is SolveBatch with cooperative cancellation: each
// in-flight solve is interrupted via SolveCtx, and instances not yet
// started when ctx fires are reported with Err set to ctx.Err(). The
// result slice always has len(ins) entries in input order. A nil ctx
// behaves like context.Background().
func SolveBatchCtx(ctx context.Context, ins []*Instance, alg Algorithm, workers int) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ins) {
		workers = len(ins)
	}
	out := make([]BatchResult, len(ins))
	for i := range out {
		out[i].Index = i
	}
	solveAt := func(i int) {
		res, err := SolveCtx(ctx, ins[i], alg)
		out[i] = BatchResult{Index: i, Result: res, Err: err}
	}
	if workers <= 1 {
		for i := range ins {
			if err := ctx.Err(); err != nil {
				out[i].Err = err
				continue
			}
			solveAt(i)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				solveAt(i)
			}
		}()
	}
feed:
	for i := range ins {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for i := range out {
			if out[i].Result == nil && out[i].Err == nil {
				out[i].Err = err
			}
		}
	}
	return out
}

// Metrics summarizes a schedule (utilization, fragmentation, peak
// concurrency, …); see the fields of sched.Metrics.
type Metrics = sched.Metrics
