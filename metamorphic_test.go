package activetime

// Metamorphic tests: transformations of an instance with a known
// effect on the optimum must move every solver's output accordingly.
// These catch bugs that single-instance oracles cannot (e.g. hidden
// dependence on absolute time values or job order).

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

func TestShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3001))
	for trial := 0; trial < 20; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(7, int64(1+rng.Intn(3))))
		delta := int64(rng.Intn(2000) - 1000)
		shifted := in.Shift(delta)
		for _, alg := range []Algorithm{AlgNested95, AlgGreedyMinimal, AlgGreedyRTL, AlgExact} {
			a, err := Solve(in, alg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
			b, err := Solve(shifted, alg)
			if err != nil {
				t.Fatalf("trial %d %s shifted: %v", trial, alg, err)
			}
			if a.ActiveSlots != b.ActiveSlots {
				t.Fatalf("trial %d %s: shift by %d changed objective %d -> %d",
					trial, alg, delta, a.ActiveSlots, b.ActiveSlots)
			}
			if err := b.Schedule.Validate(shifted); err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
		}
	}
}

func TestPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3003))
	for trial := 0; trial < 20; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(8, int64(1+rng.Intn(3))))
		perm := rng.Perm(in.N())
		shuffled := in.Permute(perm)
		for _, alg := range []Algorithm{AlgNested95, AlgExact} {
			a, err := Solve(in, alg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
			b, err := Solve(shuffled, alg)
			if err != nil {
				t.Fatalf("trial %d %s shuffled: %v", trial, alg, err)
			}
			if a.ActiveSlots != b.ActiveSlots {
				t.Fatalf("trial %d %s: permutation changed objective %d -> %d",
					trial, alg, a.ActiveSlots, b.ActiveSlots)
			}
		}
	}
}

// TestDisjointUnionAdditivity: solving two far-apart copies costs
// exactly the sum.
func TestDisjointUnionAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(3005))
	for trial := 0; trial < 15; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(6, 2))
		far := in.Shift(10_000)
		jobs := append(append([]Job{}, in.Jobs...), far.Jobs...)
		union, err := NewInstance(in.G, jobs)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{AlgNested95, AlgExact} {
			single, err := Solve(in, alg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
			double, err := Solve(union, alg)
			if err != nil {
				t.Fatalf("trial %d %s union: %v", trial, alg, err)
			}
			if double.ActiveSlots != 2*single.ActiveSlots {
				t.Fatalf("trial %d %s: union %d != 2 × %d",
					trial, alg, double.ActiveSlots, single.ActiveSlots)
			}
		}
	}
}

// TestCapacityMonotonicity: walking g up a chain of values, the exact
// optimum must be non-increasing at every step — more parallel capacity
// can never force more active slots.
func TestCapacityMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(3011))
	gs := []int64{1, 2, 3, 5, 8}
	for trial := 0; trial < 12; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(7, 1))
		prev := int64(-1)
		for _, g := range gs {
			cur := in.Clone()
			cur.G = g
			opt, err := Optimal(cur)
			if err != nil {
				t.Fatalf("trial %d g=%d: %v", trial, g, err)
			}
			if prev >= 0 && opt > prev {
				t.Fatalf("trial %d: raising g to %d increased OPT %d -> %d",
					trial, g, prev, opt)
			}
			prev = opt
		}
	}
}

// TestDuplicationDoubling: the union of an instance with a far-shifted
// copy of itself must cost exactly twice as much for every solver —
// approximate and greedy ones included, since each runs per laminar
// forest and the two copies are identical forests. The parallel-forest
// path must agree with the sequential one on the doubled instance.
func TestDuplicationDoubling(t *testing.T) {
	rng := rand.New(rand.NewSource(3013))
	for trial := 0; trial < 12; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(6, int64(1+rng.Intn(3))))
		far := in.Shift(50_000)
		jobs := append(append([]Job{}, in.Jobs...), far.Jobs...)
		union, err := NewInstance(in.G, jobs)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{AlgNested95, AlgGreedyMinimal, AlgGreedyRTL, AlgExact} {
			single, err := Solve(in, alg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
			double, err := Solve(union, alg)
			if err != nil {
				t.Fatalf("trial %d %s union: %v", trial, alg, err)
			}
			if double.ActiveSlots != 2*single.ActiveSlots {
				t.Fatalf("trial %d %s: duplicated instance costs %d, want 2 × %d",
					trial, alg, double.ActiveSlots, single.ActiveSlots)
			}
			if err := double.Schedule.Validate(union); err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
		}
		par, err := SolveNested95(union, SolveOptions{Workers: 4})
		if err != nil {
			t.Fatalf("trial %d parallel: %v", trial, err)
		}
		seq, err := SolveNested95(union, SolveOptions{Workers: 1})
		if err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		if par.ActiveSlots != seq.ActiveSlots {
			t.Fatalf("trial %d: workers=4 gives %d slots, workers=1 gives %d",
				trial, par.ActiveSlots, seq.ActiveSlots)
		}
	}
}

// TestGScalingNeverHurts: raising g can only help every algorithm with
// a monotone objective (exact; for approximations we check they don't
// violate their guarantee against the new optimum).
func TestGScalingNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(3007))
	for trial := 0; trial < 15; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(7, 2))
		big := in.Clone()
		big.G = in.G * 2
		a, err := Optimal(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Optimal(big)
		if err != nil {
			t.Fatal(err)
		}
		if b > a {
			t.Fatalf("trial %d: doubling g raised OPT %d -> %d", trial, a, b)
		}
		res, err := Solve(big, AlgNested95)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.ActiveSlots) > ApproxRatio*float64(b)+1e-9 {
			t.Fatalf("trial %d: guarantee violated after g scaling", trial)
		}
	}
}
