package activetime

// Metamorphic tests: transformations of an instance with a known
// effect on the optimum must move every solver's output accordingly.
// These catch bugs that single-instance oracles cannot (e.g. hidden
// dependence on absolute time values or job order).

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/jobs"
)

func TestShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3001))
	for trial := 0; trial < 20; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(7, int64(1+rng.Intn(3))))
		delta := int64(rng.Intn(2000) - 1000)
		shifted := in.Shift(delta)
		for _, alg := range []Algorithm{AlgNested95, AlgGreedyMinimal, AlgGreedyRTL, AlgExact} {
			a, err := Solve(in, alg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
			b, err := Solve(shifted, alg)
			if err != nil {
				t.Fatalf("trial %d %s shifted: %v", trial, alg, err)
			}
			if a.ActiveSlots != b.ActiveSlots {
				t.Fatalf("trial %d %s: shift by %d changed objective %d -> %d",
					trial, alg, delta, a.ActiveSlots, b.ActiveSlots)
			}
			if err := b.Schedule.Validate(shifted); err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
		}
	}
}

func TestPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3003))
	for trial := 0; trial < 20; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(8, int64(1+rng.Intn(3))))
		perm := rng.Perm(in.N())
		shuffled := in.Permute(perm)
		for _, alg := range []Algorithm{AlgNested95, AlgExact} {
			a, err := Solve(in, alg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
			b, err := Solve(shuffled, alg)
			if err != nil {
				t.Fatalf("trial %d %s shuffled: %v", trial, alg, err)
			}
			if a.ActiveSlots != b.ActiveSlots {
				t.Fatalf("trial %d %s: permutation changed objective %d -> %d",
					trial, alg, a.ActiveSlots, b.ActiveSlots)
			}
		}
	}
}

// TestDisjointUnionAdditivity: solving two far-apart copies costs
// exactly the sum.
func TestDisjointUnionAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(3005))
	for trial := 0; trial < 15; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(6, 2))
		far := in.Shift(10_000)
		jobs := append(append([]Job{}, in.Jobs...), far.Jobs...)
		union, err := NewInstance(in.G, jobs)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{AlgNested95, AlgExact} {
			single, err := Solve(in, alg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
			double, err := Solve(union, alg)
			if err != nil {
				t.Fatalf("trial %d %s union: %v", trial, alg, err)
			}
			if double.ActiveSlots != 2*single.ActiveSlots {
				t.Fatalf("trial %d %s: union %d != 2 × %d",
					trial, alg, double.ActiveSlots, single.ActiveSlots)
			}
		}
	}
}

// TestCapacityMonotonicity: walking g up a chain of values, the exact
// optimum must be non-increasing at every step — more parallel capacity
// can never force more active slots.
func TestCapacityMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(3011))
	gs := []int64{1, 2, 3, 5, 8}
	for trial := 0; trial < 12; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(7, 1))
		prev := int64(-1)
		for _, g := range gs {
			cur := in.Clone()
			cur.G = g
			opt, err := Optimal(cur)
			if err != nil {
				t.Fatalf("trial %d g=%d: %v", trial, g, err)
			}
			if prev >= 0 && opt > prev {
				t.Fatalf("trial %d: raising g to %d increased OPT %d -> %d",
					trial, g, prev, opt)
			}
			prev = opt
		}
	}
}

// TestDuplicationDoubling: the union of an instance with a far-shifted
// copy of itself must cost exactly twice as much for every solver —
// approximate and greedy ones included, since each runs per laminar
// forest and the two copies are identical forests. The parallel-forest
// path must agree with the sequential one on the doubled instance.
func TestDuplicationDoubling(t *testing.T) {
	rng := rand.New(rand.NewSource(3013))
	for trial := 0; trial < 12; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(6, int64(1+rng.Intn(3))))
		far := in.Shift(50_000)
		jobs := append(append([]Job{}, in.Jobs...), far.Jobs...)
		union, err := NewInstance(in.G, jobs)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{AlgNested95, AlgGreedyMinimal, AlgGreedyRTL, AlgExact} {
			single, err := Solve(in, alg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
			double, err := Solve(union, alg)
			if err != nil {
				t.Fatalf("trial %d %s union: %v", trial, alg, err)
			}
			if double.ActiveSlots != 2*single.ActiveSlots {
				t.Fatalf("trial %d %s: duplicated instance costs %d, want 2 × %d",
					trial, alg, double.ActiveSlots, single.ActiveSlots)
			}
			if err := double.Schedule.Validate(union); err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
		}
		par, err := SolveNested95(union, SolveOptions{Workers: 4})
		if err != nil {
			t.Fatalf("trial %d parallel: %v", trial, err)
		}
		seq, err := SolveNested95(union, SolveOptions{Workers: 1})
		if err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		if par.ActiveSlots != seq.ActiveSlots {
			t.Fatalf("trial %d: workers=4 gives %d slots, workers=1 gives %d",
				trial, par.ActiveSlots, seq.ActiveSlots)
		}
	}
}

// TestCostModelMonotone: within every family — including the fallback
// for an unknown family — the predicted cost is non-decreasing in the
// job count (depth fixed) and in the nesting depth (jobs fixed). This
// is the property that makes shortest-predicted-job-first coherent: a
// strictly larger instance can never be predicted cheaper, so SJF
// cannot invert on a growth transformation.
func TestCostModelMonotone(t *testing.T) {
	m := costmodel.Default()
	families := []string{
		costmodel.FamilyLaminar, costmodel.FamilyUnit,
		costmodel.FamilyGeneral, "no-such-family",
	}
	// Every per-algorithm row (and the fallback for unknown algorithms)
	// must be monotone too — the fitted features (jobs·depth,
	// jobs·depth³, jobs) are all non-decreasing and the coefficients
	// are clamped non-negative.
	algorithms := []string{
		"", string(AlgNested95), string(AlgCombinatorial),
		string(AlgGreedyMinimal), "no-such-alg",
	}
	grid := []int{1, 2, 3, 5, 8, 13, 34, 144, 1000}
	for _, fam := range families {
		for _, alg := range algorithms {
			for _, depth := range grid {
				prev := int64(-1)
				for _, jobsN := range grid {
					got := m.PredictAlgNS(fam, alg, jobsN, depth)
					if got < prev {
						t.Fatalf("%s/%s: prediction fell %d -> %d raising jobs to %d at depth %d",
							fam, alg, prev, got, jobsN, depth)
					}
					prev = got
				}
			}
			for _, jobsN := range grid {
				prev := int64(-1)
				for _, depth := range grid {
					got := m.PredictAlgNS(fam, alg, jobsN, depth)
					if got < prev {
						t.Fatalf("%s/%s: prediction fell %d -> %d raising depth to %d at jobs %d",
							fam, alg, prev, got, depth, jobsN)
					}
					prev = got
				}
			}
		}
	}
}

// TestCostModelDeepChainHonesty pins the fix for the linear
// underprediction on deep chains: the LP pipeline's predicted cost
// must grow superlinearly in depth (its tableau is ~depth⁴, its work
// ~depth³ on chains), overtake the combinatorial solver's prediction
// on deep chains, and exceed the router's latency cap at the depth
// the depth-900 repro runs at — which is exactly why AlgAuto keeps
// such instances off the LP.
func TestCostModelDeepChainHonesty(t *testing.T) {
	m := costmodel.Default()
	lpAt := func(depth int) int64 {
		return m.PredictAlgNS(costmodel.FamilyUnit, string(AlgNested95), depth, depth)
	}
	// Superlinear growth in depth: doubling the depth of a chain (which
	// doubles jobs too) must more than double the LP prediction.
	for _, d := range []int{32, 64, 128, 256} {
		lo, hi := lpAt(d), lpAt(2*d)
		if hi <= 2*lo {
			t.Fatalf("LP prediction grew linearly on chains: depth %d -> %d gives %d -> %d", d, 2*d, lo, hi)
		}
	}
	// On the repro shape the LP prediction must dwarf comb's and bust
	// the router's 500ms cap.
	lp900 := lpAt(900)
	comb900 := m.PredictAlgNS(costmodel.FamilyUnit, string(AlgCombinatorial), 900, 900)
	if lp900 <= comb900 {
		t.Fatalf("depth-900 chain: LP predicted %d ns <= comb %d ns", lp900, comb900)
	}
	if cap := DefaultRouteLimits().MaxLPPredictedNS; lp900 <= cap {
		t.Fatalf("depth-900 chain: LP predicted %d ns under the router cap %d", lp900, cap)
	}
}

// TestCostModelInstanceMonotone: unioning an instance with a
// far-shifted copy of itself (the duplication transform the solver
// suite uses) doubles the job count without lowering the depth, so the
// predicted cost must not decrease.
func TestCostModelInstanceMonotone(t *testing.T) {
	m := costmodel.Default()
	rng := rand.New(rand.NewSource(3015))
	for trial := 0; trial < 12; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(6, 2))
		far := in.Shift(50_000)
		union, err := NewInstance(in.G, append(append([]Job{}, in.Jobs...), far.Jobs...))
		if err != nil {
			t.Fatal(err)
		}
		single := m.PredictInstance(costmodel.FamilyLaminar, in)
		double := m.PredictInstance(costmodel.FamilyLaminar, union)
		if double < single {
			t.Fatalf("trial %d: duplication lowered prediction %d -> %d", trial, single, double)
		}
		if d := costmodel.Depth(union); d < costmodel.Depth(in) {
			t.Fatalf("trial %d: duplication lowered depth %d -> %d", trial, costmodel.Depth(in), d)
		}
	}
}

// TestSJFOrderInvariantUnderDuplication: duplicating a job stream must
// not change the relative execution order of the original jobs under
// SJF — duplicates (equal predicted cost, later arrival) slot in after
// their originals by the seq tiebreak, so the originals' order is
// preserved as a subsequence. A policy that compared non-deterministically
// (map iteration, pointer order) would fail this under repetition.
func TestSJFOrderInvariantUnderDuplication(t *testing.T) {
	rng := rand.New(rand.NewSource(3017))
	for trial := 0; trial < 10; trial++ {
		preds := make([]int64, 12)
		for i := range preds {
			preds[i] = int64(1 + rng.Intn(40)) // small range forces ties
		}
		// originalOrder submits `copies` interleaved copies of the stream
		// into a Manual SJF queue, drains it, and returns the execution
		// order of the FIRST copy's jobs as submission indices.
		originalOrder := func(copies int) []int {
			q := jobs.New(jobs.Config{
				MaxRunning: 1, MaxQueued: 128, Manual: true, Policy: jobs.SJF{},
			}, func(ctx context.Context, j *jobs.Job) (any, error) { return nil, nil })
			defer q.Close(context.Background())
			idx := map[string]int{}
			for c := 0; c < copies; c++ {
				for i, p := range preds {
					j, err := q.Submit(jobs.ClassBatch, p, nil)
					if err != nil {
						t.Fatal(err)
					}
					if c == 0 {
						idx[j.ID()] = i
					}
				}
			}
			var order []int
			for {
				j, ok := q.Step()
				if !ok {
					break
				}
				if i, seen := idx[j.ID()]; seen {
					order = append(order, i)
				}
			}
			return order
		}
		single := originalOrder(1)
		doubled := originalOrder(2)
		if len(single) != len(preds) {
			t.Fatalf("trial %d: drained %d of %d jobs", trial, len(single), len(preds))
		}
		if !reflect.DeepEqual(single, doubled) {
			t.Fatalf("trial %d: duplicating the stream reordered the originals:\n single %v\ndoubled %v",
				trial, single, doubled)
		}
	}
}

// TestGScalingNeverHurts: raising g can only help every algorithm with
// a monotone objective (exact; for approximations we check they don't
// violate their guarantee against the new optimum).
func TestGScalingNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(3007))
	for trial := 0; trial < 15; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(7, 2))
		big := in.Clone()
		big.G = in.G * 2
		a, err := Optimal(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Optimal(big)
		if err != nil {
			t.Fatal(err)
		}
		if b > a {
			t.Fatalf("trial %d: doubling g raised OPT %d -> %d", trial, a, b)
		}
		res, err := Solve(big, AlgNested95)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.ActiveSlots) > ApproxRatio*float64(b)+1e-9 {
			t.Fatalf("trial %d: guarantee violated after g scaling", trial)
		}
	}
}
