package activetime

// Metamorphic tests: transformations of an instance with a known
// effect on the optimum must move every solver's output accordingly.
// These catch bugs that single-instance oracles cannot (e.g. hidden
// dependence on absolute time values or job order).

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

func TestShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3001))
	for trial := 0; trial < 20; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(7, int64(1+rng.Intn(3))))
		delta := int64(rng.Intn(2000) - 1000)
		shifted := in.Shift(delta)
		for _, alg := range []Algorithm{AlgNested95, AlgGreedyMinimal, AlgGreedyRTL, AlgExact} {
			a, err := Solve(in, alg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
			b, err := Solve(shifted, alg)
			if err != nil {
				t.Fatalf("trial %d %s shifted: %v", trial, alg, err)
			}
			if a.ActiveSlots != b.ActiveSlots {
				t.Fatalf("trial %d %s: shift by %d changed objective %d -> %d",
					trial, alg, delta, a.ActiveSlots, b.ActiveSlots)
			}
			if err := b.Schedule.Validate(shifted); err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
		}
	}
}

func TestPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3003))
	for trial := 0; trial < 20; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(8, int64(1+rng.Intn(3))))
		perm := rng.Perm(in.N())
		shuffled := in.Permute(perm)
		for _, alg := range []Algorithm{AlgNested95, AlgExact} {
			a, err := Solve(in, alg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
			b, err := Solve(shuffled, alg)
			if err != nil {
				t.Fatalf("trial %d %s shuffled: %v", trial, alg, err)
			}
			if a.ActiveSlots != b.ActiveSlots {
				t.Fatalf("trial %d %s: permutation changed objective %d -> %d",
					trial, alg, a.ActiveSlots, b.ActiveSlots)
			}
		}
	}
}

// TestDisjointUnionAdditivity: solving two far-apart copies costs
// exactly the sum.
func TestDisjointUnionAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(3005))
	for trial := 0; trial < 15; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(6, 2))
		far := in.Shift(10_000)
		jobs := append(append([]Job{}, in.Jobs...), far.Jobs...)
		union, err := NewInstance(in.G, jobs)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{AlgNested95, AlgExact} {
			single, err := Solve(in, alg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
			double, err := Solve(union, alg)
			if err != nil {
				t.Fatalf("trial %d %s union: %v", trial, alg, err)
			}
			if double.ActiveSlots != 2*single.ActiveSlots {
				t.Fatalf("trial %d %s: union %d != 2 × %d",
					trial, alg, double.ActiveSlots, single.ActiveSlots)
			}
		}
	}
}

// TestGScalingNeverHurts: raising g can only help every algorithm with
// a monotone objective (exact; for approximations we check they don't
// violate their guarantee against the new optimum).
func TestGScalingNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(3007))
	for trial := 0; trial < 15; trial++ {
		in := gen.RandomLaminar(rng, gen.DefaultLaminar(7, 2))
		big := in.Clone()
		big.G = in.G * 2
		a, err := Optimal(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Optimal(big)
		if err != nil {
			t.Fatal(err)
		}
		if b > a {
			t.Fatalf("trial %d: doubling g raised OPT %d -> %d", trial, a, b)
		}
		res, err := Solve(big, AlgNested95)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.ActiveSlots) > ApproxRatio*float64(b)+1e-9 {
			t.Fatalf("trial %d: guarantee violated after g scaling", trial)
		}
	}
}
