package activetime

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/comb"
	"repro/internal/core"
	"repro/internal/instance"
)

// WarmKind classifies a near-miss delta between a cached base solve
// and a new request.
type WarmKind string

const (
	// WarmNone: the delta is not warmable; solve cold.
	WarmNone WarmKind = ""
	// WarmRaiseG: same canonical job multiset, strictly larger g.
	// Capacities only grow, so the cached solution stays feasible and
	// warm solving reduces to re-minimalizing it under the new slack.
	WarmRaiseG WarmKind = "raise_g"
	// WarmSuperset: same g, the base jobs plus new jobs whose windows
	// nest inside the cached laminar forest. Only the new jobs are
	// replayed (combinatorial path only).
	WarmSuperset WarmKind = "superset"
)

// Delta is ClassifyDelta's result: the warmable relation (if any)
// between a cached base instance and a new request, with the index
// translation a resume needs.
type Delta struct {
	Kind WarmKind
	// Mapping[baseIdx] is the job's index in the delta instance
	// (superset only; raise-g deltas map positionally).
	Mapping []int32
	// NewJobs lists delta-instance indices of jobs absent from the
	// base (superset only).
	NewJobs []int
}

// Warm-start errors. Both mean "solve cold"; ErrWarmMismatch
// additionally indicates retained state that should be dropped.
var (
	// ErrWarmUnsupported: the delta kind cannot be resumed by the
	// cached state's algorithm (e.g. a superset against LP state).
	ErrWarmUnsupported = errors.New("activetime: warm start unsupported for this delta")
	// ErrWarmMismatch: the retained state does not fit the instance.
	ErrWarmMismatch = errors.New("activetime: warm state mismatch")
)

// WarmState is retained solver state from a finished solve, stored on
// cache entries so near-miss requests can resume instead of solving
// cold. It is immutable after capture: resumes deep-copy the mutable
// parts, so one state can warm any number of concurrent requests.
type WarmState struct {
	// Algorithm that produced (and can resume) the state.
	Algorithm Algorithm
	// Base is the canonical instance the state was solved for; deltas
	// are classified against it.
	Base *Instance
	// ActiveSlots is the base solve's objective.
	ActiveSlots int64
	// Bound is the monotone acceptance bound: a raised-g resume must
	// achieve at most Bound active slots, a superset resume at most
	// Bound plus the new jobs' total processing. For the combinatorial
	// path this is the base objective (resume starts from exactly the
	// base placement and only ever closes slots); for the LP path it is
	// the retained count-vector total (the resume re-minimalizes that
	// vector). A violation means corrupted state, not a hard instance.
	Bound int64

	lp *core.WarmLP
	cb *comb.WarmState
}

// SizeBytes estimates the retained heap footprint, used for the solve
// cache's warm-byte accounting.
func (w *WarmState) SizeBytes() int64 {
	if w == nil {
		return 0
	}
	b := int64(96) + int64(w.Base.N())*32
	if w.lp != nil {
		b += w.lp.SizeBytes()
	}
	if w.cb != nil {
		b += w.cb.SizeBytes()
	}
	return b
}

// jobLess is the canonical (release, deadline, processing) order used
// by the solve cache.
func jobLess(a, b Job) bool {
	if a.Release != b.Release {
		return a.Release < b.Release
	}
	if a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	return a.Processing < b.Processing
}

func jobEq(a, b Job) bool {
	return a.Release == b.Release && a.Deadline == b.Deadline && a.Processing == b.Processing
}

// ClassifyDelta relates a new request to a cached base instance.
// Both instances are expected in canonical job order (the cache
// canonicalizes before solving); under that premise a raised-g delta
// has positionally identical jobs, and a superset delta interleaves
// new jobs into the same sorted sequence, recoverable by one merge
// walk. Anything else — removed jobs, changed windows, lowered g,
// non-nested growth — classifies as WarmNone (solve cold).
func ClassifyDelta(base, delta *Instance) Delta {
	if base == nil || delta == nil {
		return Delta{}
	}
	if delta.G > base.G && delta.N() == base.N() {
		for i := range base.Jobs {
			if !jobEq(base.Jobs[i], delta.Jobs[i]) {
				return Delta{}
			}
		}
		return Delta{Kind: WarmRaiseG}
	}
	if delta.G == base.G && delta.N() > base.N() && delta.Nested() {
		mapping := make([]int32, base.N())
		newJobs := make([]int, 0, delta.N()-base.N())
		bi, di := 0, 0
		for bi < base.N() && di < delta.N() {
			switch {
			case jobEq(base.Jobs[bi], delta.Jobs[di]):
				mapping[bi] = int32(di)
				bi++
				di++
			case jobLess(delta.Jobs[di], base.Jobs[bi]):
				newJobs = append(newJobs, di)
				di++
			default:
				// A base job is missing from the delta.
				return Delta{}
			}
		}
		if bi < base.N() {
			return Delta{}
		}
		for ; di < delta.N(); di++ {
			newJobs = append(newJobs, di)
		}
		return Delta{Kind: WarmSuperset, Mapping: mapping, NewJobs: newJobs}
	}
	return Delta{}
}

// warmErr maps solver-level mismatch sentinels onto the root one so
// callers can errors.Is against ErrWarmMismatch alone.
func warmErr(err error) error {
	if errors.Is(err, comb.ErrWarmMismatch) || errors.Is(err, core.ErrWarmMismatch) {
		return fmt.Errorf("%w: %v", ErrWarmMismatch, err)
	}
	return err
}

// SolveWarmCtx resumes retained warm state for a classified near-miss
// delta instead of solving cold. The resumed schedule is validated
// in full and checked against the monotone bound recorded at capture
// time (see WarmState.Bound); any failure returns an error and the
// caller falls back to a cold solve. The result carries no
// LPLowerBound / CertifiedRatio — the old LP optimum is not a bound
// for the delta instance.
func SolveWarmCtx(ctx context.Context, in *Instance, w *WarmState, d Delta, opts SolveOptions) (*Result, error) {
	if w == nil || d.Kind == WarmNone {
		return nil, ErrWarmUnsupported
	}
	var bound int64
	switch d.Kind {
	case WarmRaiseG:
		bound = w.Bound
	case WarmSuperset:
		bound = w.Bound
		for _, ji := range d.NewJobs {
			if ji < 0 || ji >= in.N() {
				return nil, fmt.Errorf("%w: new-job index %d out of range", ErrWarmMismatch, ji)
			}
			bound += in.Jobs[ji].Processing
		}
	default:
		return nil, ErrWarmUnsupported
	}

	var (
		s    *Schedule
		next *WarmState
		err  error
		res  = &Result{Algorithm: w.Algorithm}
	)
	switch {
	case w.Algorithm == AlgNested95 && w.lp != nil:
		if d.Kind != WarmRaiseG {
			// The LP resume replays count vectors, not jobs; supersets
			// need the combinatorial path.
			return nil, ErrWarmUnsupported
		}
		var rep core.Report
		var nlp *core.WarmLP
		s, rep, nlp, err = core.SolveWarm(ctx, in, w.lp, core.Options{
			Metrics:     opts.Metrics,
			Trace:       opts.Trace,
			CaptureWarm: opts.CaptureWarm,
		})
		if err != nil {
			return nil, warmErr(err)
		}
		res.Stats = rep.Stats
		if nlp != nil {
			next = &WarmState{
				Algorithm:   AlgNested95,
				Base:        in,
				ActiveSlots: s.NumActive(),
				Bound:       rep.RoundedSlots,
				lp:          nlp,
			}
		}
	case w.Algorithm == AlgCombinatorial && w.cb != nil:
		var rep *comb.Report
		copts := comb.Options{
			Metrics:     opts.Metrics,
			Trace:       opts.Trace,
			CaptureWarm: opts.CaptureWarm,
		}
		switch d.Kind {
		case WarmRaiseG:
			s, rep, err = comb.ResumeRaiseG(ctx, in, w.cb, copts)
		case WarmSuperset:
			s, rep, err = comb.ResumeSuperset(ctx, in, w.cb, d.Mapping, d.NewJobs, copts)
		}
		if err != nil {
			return nil, warmErr(err)
		}
		res.Stats = rep.Stats
		if rep.Warm != nil {
			next = &WarmState{
				Algorithm:   AlgCombinatorial,
				Base:        in,
				ActiveSlots: rep.ActiveSlots,
				Bound:       rep.ActiveSlots,
				cb:          rep.Warm,
			}
		}
	default:
		return nil, ErrWarmUnsupported
	}

	res.Schedule = s
	res.ActiveSlots = s.NumActive()
	if res.ActiveSlots > bound {
		// The warm paths only ever deactivate / minimalize beyond the
		// retained placement, so exceeding the bound means the retained
		// state is corrupt — never that the instance is hard.
		return nil, fmt.Errorf("%w: resumed objective %d exceeds monotone bound %d",
			ErrWarmMismatch, res.ActiveSlots, bound)
	}
	res.Warm = next
	return res, nil
}

// warmStateFor assembles the public WarmState from a solver-level
// capture (nil when nothing was captured).
func warmStateFor(alg Algorithm, in *instance.Instance, lp *core.WarmLP, lpBound int64, cb *comb.WarmState, active int64) *WarmState {
	switch alg {
	case AlgNested95:
		if lp == nil {
			return nil
		}
		return &WarmState{Algorithm: alg, Base: in, ActiveSlots: active, Bound: lpBound, lp: lp}
	case AlgCombinatorial:
		if cb == nil {
			return nil
		}
		return &WarmState{Algorithm: alg, Base: in, ActiveSlots: active, Bound: active, cb: cb}
	}
	return nil
}
