package activetime

import (
	"context"
	"fmt"

	"repro/internal/comb"
	"repro/internal/costmodel"
)

// RouteLimits bounds what AlgAuto is willing to hand the LP pipeline.
// An instance that exceeds any limit is routed to AlgCombinatorial
// instead; the zero value of any field means "use the default".
type RouteLimits struct {
	// MaxLPJobs caps the job count for the LP path.
	MaxLPJobs int
	// MaxLPDepth caps the nesting depth for the LP path. The LP has a
	// y-variable and a coupling row per (window, contained job) pair,
	// so a chain of depth d costs Θ(d²) pairs and a Θ(d⁴) dense
	// tableau.
	MaxLPDepth int
	// MaxLPTableauBytes caps the estimated dense-tableau footprint
	// (costmodel.EstimateLP) for the LP path.
	MaxLPTableauBytes int64
	// MaxLPPredictedNS caps the cost model's latency prediction for
	// the LP path.
	MaxLPPredictedNS int64
}

// DefaultRouteLimits returns the production routing thresholds: the
// LP path is reserved for instances where its 9/5 certificate is
// affordable — at most 4096 jobs, nesting depth at most 64, an
// estimated tableau under 64 MiB and a predicted solve under 500ms.
func DefaultRouteLimits() RouteLimits {
	return RouteLimits{
		MaxLPJobs:         4096,
		MaxLPDepth:        64,
		MaxLPTableauBytes: 64 << 20,
		MaxLPPredictedNS:  500e6,
	}
}

func (l RouteLimits) withDefaults() RouteLimits {
	d := DefaultRouteLimits()
	if l.MaxLPJobs <= 0 {
		l.MaxLPJobs = d.MaxLPJobs
	}
	if l.MaxLPDepth <= 0 {
		l.MaxLPDepth = d.MaxLPDepth
	}
	if l.MaxLPTableauBytes <= 0 {
		l.MaxLPTableauBytes = d.MaxLPTableauBytes
	}
	if l.MaxLPPredictedNS <= 0 {
		l.MaxLPPredictedNS = d.MaxLPPredictedNS
	}
	return l
}

// Routing reasons reported in RouteDecision.Reason (and surfaced as
// route_reason on the server's wide events).
const (
	RouteReasonGeneralWindows      = "general_windows"
	RouteReasonJobsOverLPCap       = "jobs_over_lp_cap"
	RouteReasonDepthOverLPCap      = "depth_over_lp_cap"
	RouteReasonLPTableauOverMemCap = "lp_tableau_over_mem_cap"
	RouteReasonLPPredictedSlow     = "lp_predicted_slow"
	RouteReasonSmallNestedLP       = "small_nested_lp"
)

// RouteDecision is the outcome of Route: the concrete algorithm
// chosen for an AlgAuto solve and the evidence behind the choice.
type RouteDecision struct {
	// Algorithm is the concrete solver chosen.
	Algorithm Algorithm
	// Reason is one of the RouteReason constants.
	Reason string
	// Jobs and Depth are the instance features the decision used.
	Jobs  int
	Depth int
	// PredictedNS is the cost model's latency prediction for the
	// chosen algorithm.
	PredictedNS int64
	// LPTableauBytes is the estimated dense-tableau footprint the LP
	// path would have needed (0 when the instance is not nested and
	// the estimate was never consulted).
	LPTableauBytes int64
}

// Route decides which solver an AlgAuto request should run, from the
// instance shape and the cost model: non-nested windows go to the
// greedy 3-approximation (the only general-windows algorithm with a
// guarantee), nested instances go to the 9/5 LP pipeline while it is
// affordable under the limits, and everything else — deep chains,
// huge forests — goes to the combinatorial solver. A nil model uses
// the embedded default; zero-valued limits use DefaultRouteLimits.
//
// Route never solves anything; it costs one O(n log n) sweep over the
// windows plus, for nested instances within the job/depth caps, one
// containment-count sweep for the tableau estimate.
func Route(in *Instance, m *costmodel.Model, lim RouteLimits) RouteDecision {
	if m == nil {
		m = costmodel.Default()
	}
	lim = lim.withDefaults()
	family := costmodel.FamilyFor(in)
	jobs := in.N()
	depth := costmodel.Depth(in)
	dec := RouteDecision{Jobs: jobs, Depth: depth}
	finish := func(alg Algorithm, reason string) RouteDecision {
		dec.Algorithm = alg
		dec.Reason = reason
		dec.PredictedNS = m.PredictAlgNS(family, string(alg), jobs, depth)
		return dec
	}
	if family == costmodel.FamilyGeneral {
		return finish(AlgGreedyMinimal, RouteReasonGeneralWindows)
	}
	if jobs > lim.MaxLPJobs {
		return finish(AlgCombinatorial, RouteReasonJobsOverLPCap)
	}
	if depth > lim.MaxLPDepth {
		return finish(AlgCombinatorial, RouteReasonDepthOverLPCap)
	}
	est := costmodel.EstimateLP(in)
	dec.LPTableauBytes = est.TableauBytes
	if est.TableauBytes > lim.MaxLPTableauBytes {
		return finish(AlgCombinatorial, RouteReasonLPTableauOverMemCap)
	}
	if m.PredictAlgNS(family, string(AlgNested95), jobs, depth) > lim.MaxLPPredictedNS {
		return finish(AlgCombinatorial, RouteReasonLPPredictedSlow)
	}
	return finish(AlgNested95, RouteReasonSmallNestedLP)
}

// SolveCombinatorial runs the lazy-activation solver with explicit
// options (Metrics and Trace are honored; the LP-specific options are
// ignored).
func SolveCombinatorial(in *Instance, opts SolveOptions) (*Result, error) {
	return SolveCombinatorialCtx(context.Background(), in, opts)
}

// SolveCombinatorialCtx is SolveCombinatorial with cooperative
// cancellation (checked per batch of jobs placed).
func SolveCombinatorialCtx(ctx context.Context, in *Instance, opts SolveOptions) (*Result, error) {
	s, rep, err := comb.SolveContext(ctx, in, comb.Options{
		Metrics:     opts.Metrics,
		Trace:       opts.Trace,
		CaptureWarm: opts.CaptureWarm,
	})
	if err != nil {
		return nil, fmt.Errorf("activetime: %w", err)
	}
	return &Result{
		Algorithm:   AlgCombinatorial,
		Schedule:    s,
		ActiveSlots: rep.ActiveSlots,
		Stats:       rep.Stats,
		Warm:        warmStateFor(AlgCombinatorial, in, nil, 0, rep.Warm, rep.ActiveSlots),
	}, nil
}
